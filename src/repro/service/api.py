"""The PTRider service: the demo's smartphone and website flows as an API.

Smartphone interface (Section 4.1)
    1. :meth:`PTRiderService.book` -- the rider supplies a start location, a
       destination and a rider count; the service applies the global waiting
       time / service constraint and returns the non-dominated options;
    2. :meth:`PTRiderService.choose` -- the rider picks an option; the
       serving vehicle's kinetic tree and the grid's vehicle lists are
       updated.

Website interface (Section 4.2)
    * :meth:`PTRiderService.vehicle_schedules` -- the trip schedules of a
      selected taxi (the red branches drawn on the demo's map);
    * :meth:`PTRiderService.statistics` -- the live panel (current time,
      average response time, average sharing rate, ...);
    * :meth:`PTRiderService.routing_statistics` -- the routing-layer admin
      panel: backend and tree provider in use, query/cache counters and the
      build-vs-load seconds that show whether the compiled artifacts came
      from the artifact cache (warm restart) or were built this session;
    * :meth:`PTRiderService.set_parameters` -- the admin form (taxi capacity,
      number of taxis, maximum waiting time, service constraint, price
      calculator, matching algorithm, routing backend, tree provider).

Time advances through :meth:`PTRiderService.advance`, which delegates to the
simulation engine: vehicles drive their schedules, pick-ups and drop-offs
fire, and idle vehicles wander -- exactly the demo's background behaviour.
"""

from __future__ import annotations

import itertools
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.baselines.nearest import NearestVehicleMatcher
from repro.baselines.sharek import SharekStyleMatcher
from repro.baselines.tshare import TShareStyleMatcher
from repro.core.config import SystemConfig
from repro.core.dispatcher import DispatchOutcome, Dispatcher
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.matcher import Matcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.errors import ConfigurationError, ServiceError, UnknownOptionError
from repro.model.options import RideOption
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.io import network_from_dict, network_to_dict
from repro.roadnet.routing import ROUTING_BACKENDS, TREE_PROVIDERS, make_engine
from repro.service.ingest import MicroBatcher, batcher_from_config
from repro.service.journal import ServiceJournal
from repro.service.recovery import (
    RecoveryError,
    deserialize_config,
    load_snapshot_state,
    replay_records,
    restore_state,
    serialize_config,
    serialize_request,
    write_delta,
    write_snapshot,
)
from repro.sim.engine import SimulationEngine
from repro.sim.workload import RequestWorkload
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

__all__ = ["Booking", "PTRiderService", "build_system", "MATCHER_REGISTRY"]

#: Incremental snapshot deltas written before compaction (a full snapshot)
#: becomes due.  Bounds both the delta-fold work at recovery and the disk
#: held by the chain; compaction itself waits for a gap between windows.
DELTA_COMPACT_AFTER = 16

#: Matching algorithms selectable through the admin interface.
MATCHER_REGISTRY = {
    "single_side": SingleSideSearchMatcher,
    "dual_side": DualSideSearchMatcher,
    "naive": NaiveKineticTreeMatcher,
    "nearest": NearestVehicleMatcher,
    "sharek": SharekStyleMatcher,
    "tshare": TShareStyleMatcher,
}


@dataclass
class Booking:
    """One rider interaction: request, offered options, eventual choice."""

    booking_id: str
    request: Request
    options: Tuple[RideOption, ...]
    chosen: Optional[RideOption] = None
    #: wall-clock seconds the matcher needed to produce the options
    response_seconds: float = 0.0

    @property
    def is_open(self) -> bool:
        """``True`` while the rider has not chosen (or cancelled)."""
        return self.chosen is None

    @property
    def option_count(self) -> int:
        """Number of non-dominated options offered."""
        return len(self.options)


class PTRiderService:
    """The complete in-memory PTRider system.

    Args:
        fleet: the vehicle fleet (already registered in a grid index).
        config: global system parameters.  With ``durability`` other than
            "off" the service opens (or creates) the write-ahead journal at
            ``config.journal_path``, records the road network / grid shape /
            config in its metadata, writes a baseline snapshot, and from
            then on journals every state-mutating call before executing it.
            A journal directory that already holds state is refused here --
            use :meth:`recover` to restore it.
        seed: seed for the embedded simulation engine's idle wandering.
        wall_clock: override for the batcher's flush-wall clock (tests and
            replay benchmarks inject a deterministic counter so adaptive
            window trajectories -- which feed on flush walls -- replay
            byte-identically; ``None`` uses ``time.perf_counter``).
    """

    def __init__(
        self,
        fleet: Fleet,
        config: Optional[SystemConfig] = None,
        seed: Optional[int] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        _journal: Optional[ServiceJournal] = None,
        _resume: bool = False,
    ) -> None:
        self._fleet = fleet
        #: wall-clock override for the batcher (deterministic benchmarks /
        #: tests inject a fake clock; ``None`` = ``time.perf_counter``)
        self._wall_clock = wall_clock
        self._config = config or SystemConfig()
        self._matcher = self._build_matcher(self._config.matcher_name)
        self._dispatcher = Dispatcher(fleet, self._matcher, self._config)
        self._engine = SimulationEngine(
            dispatcher=self._dispatcher,
            workload=RequestWorkload([]),
            speed=self._config.speed,
            tick=1.0,
            seed=seed,
        )
        self._bookings: Dict[str, Booking] = {}
        self._booking_counter = itertools.count(1)
        self._ingest_answered: List[Booking] = []
        self._batcher = self._build_batcher()
        #: highest journal sequence number already applied to this state
        #: (idempotence high-water mark for replay)
        self._applied_seq = 0
        #: whether mutating calls append journal records (off during replay)
        self._recording = False
        #: journal position of the newest snapshot (cadence bookkeeping)
        self._last_snapshot_seq = 0
        #: flush outcomes collected during the current command, journaled
        #: as one annotation record when the command finishes
        self._outcome_buffer: List[Dict[str, object]] = []
        #: booking ids mutated since the last snapshot point, in creation
        #: order (an insertion-ordered dict used as an ordered set, so an
        #: incremental delta's fold reproduces the bookings-list order of
        #: a full serialisation exactly)
        self._dirty_bookings: Dict[str, None] = {}
        #: vehicle ids mutated since the last snapshot point
        self._dirty_vehicles: set = set()
        #: journal position of the newest *full* snapshot (delta chain base)
        self._last_full_seq = 0
        #: journal position of the newest snapshot point (full or delta)
        self._prev_snapshot_point = 0
        #: deltas written since the last full snapshot (compaction trigger)
        self._deltas_since_full = 0
        #: compaction requested; runs at the next gap between windows
        self._compaction_due = False
        #: lengths of the append-only statistics lists at the last snapshot
        #: point; incremental deltas serialise only the suffixes past these
        self._stats_marker: Dict[str, int] = {}
        #: whether the on-disk delta chain ends exactly at this service's
        #: restored/written state -- a ``prefer_snapshot=False`` recovery
        #: restores *behind* the chain's end, and suffix-based deltas
        #: cannot extend the chain coherently from there (their list tails
        #: would overlap what the chain already carries), so the next
        #: cadence crossing writes a chain-resetting full snapshot instead
        self._delta_chain_valid = True
        #: persistence-cost attribution for the admin panel
        self._snapshot_stats: Dict[str, float] = {
            "full_count": 0.0,
            "delta_count": 0.0,
            "full_bytes": 0.0,
            "delta_bytes": 0.0,
            "full_seconds": 0.0,
            "delta_seconds": 0.0,
        }
        self._seed = seed
        self._journal: Optional[ServiceJournal] = _journal
        if self._journal is None and self._config.durability != "off":
            self._journal = ServiceJournal(self._config.journal_path)
        if self._journal is not None:
            self._dispatcher.outcome_listener = self._record_outcome_annotation
            if not _resume:
                if not self._journal.is_fresh():
                    raise ServiceError(
                        f"journal at {self._journal.directory} already holds "
                        "state; use PTRiderService.recover() to restore it"
                    )
                # Metadata makes recover(journal_path) self-contained: the
                # road network, grid shape and config travel with the log.
                self._journal.set_meta(
                    "network", network_to_dict(self._fleet.grid.network)
                )
                self._journal.set_meta(
                    "grid",
                    {
                        "rows": self._fleet.grid.rows,
                        "columns": self._fleet.grid.columns,
                    },
                )
                self._journal.set_meta(
                    "register_full_paths", self._fleet._register_full_paths
                )
                self._journal.set_meta("config", serialize_config(self._config))
                self._journal.set_meta("seed", seed)
                # Baseline snapshot at position 0: full-journal replay (and
                # plain "journal" mode, which never snapshots again) starts
                # from here.
                write_snapshot(self._journal, self, 0)
                self._recording = True

    def _build_batcher(self) -> MicroBatcher:
        # The batcher's default clock is the service's simulated time (the
        # same clock request submit times are stamped with), so
        # ``batch_window`` counts the seconds :meth:`advance` moves; replay
        # and live callers can still pass an explicit ``now`` per call.
        return batcher_from_config(
            self._dispatcher,
            self._config,
            clock=lambda: self._engine.time,
            on_outcome=self._record_ingest_outcome,
            wall_clock=self._wall_clock,
        )

    # ------------------------------------------------------------------
    # plumbing
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        """The fleet behind the service."""
        return self._fleet

    @property
    def config(self) -> SystemConfig:
        """The current global parameters."""
        return self._config

    @property
    def dispatcher(self) -> Dispatcher:
        """The dispatcher used by the service (exposed for examples/benchmarks)."""
        return self._dispatcher

    @property
    def matcher(self) -> Matcher:
        """The matching algorithm currently in use."""
        return self._matcher

    @property
    def current_time(self) -> float:
        """The current simulation time (the website panel's clock)."""
        return self._engine.time

    def _build_matcher(self, name: str) -> Matcher:
        try:
            matcher_class = MATCHER_REGISTRY[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown matcher {name!r}; choose one of {sorted(MATCHER_REGISTRY)}"
            ) from None
        return matcher_class(self._fleet, config=self._config)

    # ------------------------------------------------------------------
    # durability (write-ahead journal + snapshots)
    # ------------------------------------------------------------------
    @property
    def journal(self) -> Optional[ServiceJournal]:
        """The durability journal (``None`` when ``durability="off"``)."""
        return self._journal

    def _journal_command(self, kind: str, payload: Dict[str, object]) -> None:
        """Write-ahead: append a command record *before* executing it.

        A crash after the append but before (or during) execution is
        absorbed by recovery, which re-executes the command to completion;
        a crash before the append means the call simply never happened.
        """
        if self._journal is not None and self._recording:
            self._outcome_buffer.clear()
            self._applied_seq = self._journal.append(kind, payload)

    def _finish_command(self) -> None:
        """Post-command bookkeeping: flush the command's outcome annotation
        (one record per command, however many outcomes the flush produced)
        and apply the snapshot cadence under journal+snapshot."""
        if self._journal is None or not self._recording:
            return
        if self._outcome_buffer:
            self._journal.append("outcome", {"outcomes": self._outcome_buffer})
            self._outcome_buffer = []
        self._applied_seq = self._journal.last_seq()
        if self._config.durability != "journal+snapshot":
            return
        cadence_due = (
            self._applied_seq - self._last_snapshot_seq
            >= self._config.snapshot_interval
        )
        if self._config.snapshot_mode == "incremental":
            # The cadence writes a cheap delta (dirty partitions only); the
            # expensive full serialisation is demoted to a compaction that
            # only runs between windows -- never inside a flush, so it can
            # never inflate a serving window's latency.
            if cadence_due:
                if self._delta_chain_valid:
                    self._write_delta()
                else:
                    self.snapshot()
            if self._compaction_due and self._batcher.pending == 0:
                self.snapshot()
        elif cadence_due:
            self.snapshot()

    def _window_payload(self, payload: Dict[str, object]) -> Dict[str, object]:
        """Stamp the effective ingest window onto a serving-path payload.

        Under ``batch_window_mode="adaptive"`` the window in force when a
        command executed was picked by wall-clock flush walls -- replay
        cannot re-derive it.  Journaling it per command lets
        :func:`~repro.service.recovery.apply_record` pin the recorded
        window before re-executing, keeping replayed window boundaries
        (and therefore flush outcomes) byte-identical.
        """
        if self._batcher.window_mode == "adaptive":
            payload["window"] = self._batcher.current_window
        return payload

    def _record_outcome_annotation(self, outcome: DispatchOutcome) -> None:
        """Buffer one window-flush outcome for the command's annotation.

        Attached as the dispatcher's ``outcome_listener``; the buffered
        outcomes land as a single annotation record when the command
        finishes (a record per outcome would double the journal's append
        count on the serving hot path).  Recovery never re-executes them,
        it cross-checks the outcomes its replay re-derives against them
        (see :mod:`repro.service.recovery`).  A crash before the flush
        loses only the annotation -- replay tolerates re-deriving more
        outcomes than were recorded.
        """
        if self._journal is not None and self._recording:
            self._outcome_buffer.append(self._outcome_payload(outcome))

    def _outcome_payload(self, outcome: DispatchOutcome) -> Dict[str, object]:
        """The deterministic portion of an outcome (no wall-clock fields)."""
        chosen = outcome.chosen
        return {
            "request_id": outcome.request.request_id,
            "options": [
                [option.vehicle_id, option.price, option.pickup_distance]
                for option in outcome.options
            ],
            "chosen": (
                None
                if chosen is None
                else [chosen.vehicle_id, chosen.price, chosen.pickup_distance]
            ),
            "direct_distance": outcome.direct_distance,
        }

    def snapshot(self) -> Path:
        """Write a snapshot of the current state at the journal's position.

        Returns the snapshot file's path.  Called automatically every
        ``snapshot_interval`` records under ``durability="journal+snapshot"``
        and available to admin tooling (e.g. right before a planned
        restart, so recovery replays nothing).

        Raises:
            ServiceError: when durability is off (there is no journal).
        """
        if self._journal is None:
            raise ServiceError("durability is off; there is no journal to snapshot")
        seq = self._journal.last_seq()
        started = time.perf_counter()
        path = write_snapshot(self._journal, self, seq)
        self._snapshot_stats["full_seconds"] += time.perf_counter() - started
        self._snapshot_stats["full_count"] += 1.0
        try:
            self._snapshot_stats["full_bytes"] = float(path.stat().st_size)
        except OSError:  # pragma: no cover - fs race
            pass
        self._last_snapshot_seq = seq
        # A full snapshot resets the incremental chain: older deltas are
        # superseded (pruned) and dirty tracking starts over from here.
        self._last_full_seq = seq
        self._prev_snapshot_point = seq
        self._deltas_since_full = 0
        self._compaction_due = False
        self._journal.prune_deltas(seq)
        self._dirty_bookings = {}
        self._dirty_vehicles = set()
        self._reset_stats_baseline()
        self._delta_chain_valid = True
        return path

    def _write_delta(self) -> Path:
        """Write an incremental snapshot delta at the journal's position.

        The hot-path half of ``snapshot_mode="incremental"``: serialises
        only the partitions dirtied since the previous snapshot point
        (touched bookings, touched vehicles, the small meta partition) and
        chains the file on that point.  After :data:`DELTA_COMPACT_AFTER`
        deltas a compaction (full :meth:`snapshot`) is requested; it runs
        at the next gap between windows.
        """
        seq = self._journal.last_seq()
        started = time.perf_counter()
        path = write_delta(
            self._journal,
            self,
            seq,
            self._last_full_seq,
            self._prev_snapshot_point,
            self._dirty_bookings,
            self._dirty_vehicles,
            self._stats_marker,
        )
        self._snapshot_stats["delta_seconds"] += time.perf_counter() - started
        self._snapshot_stats["delta_count"] += 1.0
        try:
            self._snapshot_stats["delta_bytes"] = float(path.stat().st_size)
        except OSError:  # pragma: no cover - fs race
            pass
        self._last_snapshot_seq = seq
        self._prev_snapshot_point = seq
        self._deltas_since_full += 1
        self._dirty_bookings = {}
        self._dirty_vehicles = set()
        self._reset_stats_baseline()
        if self._deltas_since_full >= DELTA_COMPACT_AFTER:
            self._compaction_due = True
        return path

    def _reset_stats_baseline(self) -> None:
        """Start a fresh dirty-stats window at a snapshot point.

        Records the lengths of the append-only measurement lists (the next
        delta carries only what lands past them) and clears the dirty
        lifecycle-record set.  Called wherever a snapshot point is
        established: full snapshots, deltas, and the restore side of
        recovery (replayed tail mutations then dirty exactly what live
        execution would have).
        """
        sim = self._engine.statistics
        ingest = self._batcher.statistics
        self._stats_marker = {
            "response_times": len(sim.response_times),
            "option_counts": len(sim.option_counts),
            "waiting_distances": len(sim.waiting_distances),
            "detour_ratios": len(sim.detour_ratios),
            "window_fills": len(ingest.window_fills),
            "latencies": len(ingest.latencies),
            # pending-window suffix marker: while the batcher's epoch still
            # matches (appends only since this point), the next delta ships
            # just the newly admitted entries
            "pending_epoch": self._batcher.pending_epoch,
            "pending_len": self._batcher.pending,
        }
        sim.dirty_records.clear()

    def _mark_booking_dirty(self, booking_id: str) -> None:
        """Record a booking mutation for the next incremental delta.

        Insertion order is creation order (re-marking an id keeps its
        original position), which is what lets a delta fold reproduce the
        full serialisation's bookings-list order byte-for-byte.  Marking is
        unconditional -- replay must dirty the same state live execution
        did, so post-recovery deltas include the replayed tail's mutations.
        """
        self._dirty_bookings[booking_id] = None

    def _mark_vehicle_dirty(self, vehicle_id: str) -> None:
        """Record a vehicle mutation for the next incremental delta."""
        self._dirty_vehicles.add(vehicle_id)

    def _mark_all_vehicles_dirty(self) -> None:
        """Every vehicle moved (``advance``: schedules drive, idlers wander)."""
        self._dirty_vehicles.update(self._fleet.vehicle_ids())

    def _peek_booking_counter(self) -> int:
        """The next booking number the counter would hand out (not consumed)."""
        value = next(self._booking_counter)
        self._booking_counter = itertools.count(value)
        return value

    def _set_booking_counter(self, value: int) -> None:
        """Reset the booking counter (snapshot restore)."""
        self._booking_counter = itertools.count(value)

    @classmethod
    def _resume_at_snapshot(
        cls, journal: ServiceJournal, prefer_snapshot: bool = True
    ) -> Tuple["PTRiderService", int]:
        """Build a service from the journal's metadata at its newest snapshot.

        The restore half of :meth:`recover`: the road network, grid shape,
        config and seed come from the journal's metadata; the newest valid
        snapshot (or the baseline, with ``prefer_snapshot=False``) is
        restored; recording stays suspended and *no* records are replayed.
        Returns the service and the snapshot's journal position.  The
        property suite uses this seam to replay tails in custom orders.
        """
        network_payload = journal.get_meta("network")
        config_payload = journal.get_meta("config")
        if network_payload is None or config_payload is None:
            raise RecoveryError(
                f"journal at {journal.directory} holds no service metadata; "
                "it was never attached to a durable service"
            )
        config = deserialize_config(config_payload)
        grid_meta = journal.get_meta("grid") or {}
        network = network_from_dict(network_payload)
        engine = make_engine(
            network,
            config.routing_backend,
            table_max_vertices=config.table_max_vertices,
            cache_dir=config.routing_cache_dir,
            tree_provider=config.tree_provider,
        )
        grid = GridIndex(
            network,
            rows=int(grid_meta.get("rows", 8)),
            columns=int(grid_meta.get("columns", 8)),
        )
        fleet = Fleet(
            grid,
            engine,
            register_full_paths=bool(journal.get_meta("register_full_paths")),
        )
        service = cls(
            fleet,
            config=config,
            seed=journal.get_meta("seed"),
            _journal=journal,
            _resume=True,
        )
        seq, state = load_snapshot_state(journal, prefer_snapshot=prefer_snapshot)
        restore_state(service, state)
        service._applied_seq = seq
        # The restored lists are exactly their at-``seq`` lengths: the next
        # delta's suffixes start here, and the replayed tail appends past
        # them through the same mutation paths live execution uses.
        service._reset_stats_baseline()
        return service, seq

    @classmethod
    def recover(
        cls, journal_path: "Path | str", prefer_snapshot: bool = True
    ) -> "PTRiderService":
        """Rebuild a service from its durability journal after a crash.

        The restore + replay flow: read the journal's metadata (road
        network, grid shape, config, seed), build a fresh service on them
        with recording suspended, restore the newest *valid* snapshot
        (corrupt or partial snapshot files fall back to older ones, down
        to the baseline), re-execute the journal tail past the snapshot in
        sequence order -- cross-checking re-derived window-flush outcomes
        against the journaled annotations -- and resume recording.  A torn
        journal tail (unreadable suffix) is dropped and physically
        truncated so post-recovery records are never written beyond a hole.

        The recovered state is ``==`` (on serialized state, wall-clock
        measurements aside) to the pre-crash service: bookings, vehicle
        schedules, fleet positions and statistics counters included.

        Args:
            journal_path: the journal directory of the crashed service.
            prefer_snapshot: with ``False``, ignore periodic snapshots and
                replay the full journal from the baseline (the ablation arm
                of the recovery benchmark).

        Raises:
            RecoveryError: when the journal has no metadata, no usable
                snapshot, or the replay diverges from the journaled
                outcomes.
        """
        journal = ServiceJournal(journal_path)
        readable = journal.records()
        readable_end = readable[-1].seq if readable else 0
        if journal.truncated_records:
            # The journal is the source of truth; a torn suffix moves the
            # durable horizon back to the last readable record.  Drop the
            # hole for good (new records must never land beyond it) and
            # discard snapshots past the horizon -- they encode states the
            # truncated journal can no longer prove, and restoring one
            # would silently apply the very commands the tear lost.  The
            # never-pruned baseline guarantees a fallback always remains.
            journal.truncate_after(readable_end)
            for snapshot_seq, path in itertools.chain(
                journal.snapshot_files(), journal.delta_files()
            ):
                if snapshot_seq > readable_end:
                    try:
                        path.unlink()
                    except OSError:  # pragma: no cover - fs race
                        pass
        service, seq = cls._resume_at_snapshot(journal, prefer_snapshot)
        replay_records(service, [r for r in readable if r.seq > seq])
        service._applied_seq = journal.last_seq()
        full_seqs = [s for s, _ in journal.snapshot_files()]
        delta_seqs = [s for s, _ in journal.delta_files()]
        service._last_full_seq = max(full_seqs, default=0)
        service._last_snapshot_seq = max(full_seqs + delta_seqs, default=0)
        service._prev_snapshot_point = service._last_snapshot_seq
        service._deltas_since_full = sum(
            1 for s in delta_seqs if s > service._last_full_seq
        )
        service._compaction_due = service._deltas_since_full >= DELTA_COMPACT_AFTER
        # When the restore point sits behind the chain's end (a
        # prefer_snapshot=False restore, or a fold cut short by a torn
        # delta), suffix-based deltas cannot extend the chain coherently;
        # the next cadence crossing writes a full snapshot to reset it.
        service._delta_chain_valid = seq >= service._prev_snapshot_point
        service._recording = True
        return service

    # ------------------------------------------------------------------
    # smartphone interface
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> List[RideOption]:
        """Return the non-dominated options for a fully specified request."""
        return self._dispatcher.submit(self._dispatcher.normalise(request))

    def book(self, start: int, destination: int, riders: int = 1) -> Booking:
        """Step (i)+(ii) of the demo flow: submit a trip, receive the options.

        The global maximum waiting time and service constraint are applied,
        exactly as the demo does for requests coming from the smartphone UI.
        """
        return self.book_request(
            Request(
                start=start,
                destination=destination,
                riders=riders,
                max_waiting=self._config.max_waiting,
                service_constraint=self._config.service_constraint,
                submit_time=self._engine.time,
            )
        )

    def book_request(self, request: Request) -> Booking:
        """Book a fully specified :class:`~repro.model.request.Request`.

        The per-request serving path: one matcher invocation against the
        current fleet state, options returned immediately.  Replay harnesses
        use this (rather than :meth:`book`) so the *same* request objects --
        ids included -- can be driven through both the per-request loop and
        the micro-batched ingest path and their outcomes compared verbatim.
        """
        self._journal_command("book", {"request": serialize_request(request)})
        started = time.perf_counter()
        options = self._dispatcher.submit(request)
        elapsed = time.perf_counter() - started
        booking = Booking(
            booking_id=f"B{next(self._booking_counter)}",
            request=request,
            options=tuple(options),
            response_seconds=elapsed,
        )
        self._bookings[booking.booking_id] = booking
        self._mark_booking_dirty(booking.booking_id)
        self._finish_command()
        return booking

    # ------------------------------------------------------------------
    # micro-batched ingest (the high-throughput serving path)
    # ------------------------------------------------------------------
    @property
    def batcher(self) -> MicroBatcher:
        """The micro-batcher behind :meth:`ingest` (exposed for benchmarks)."""
        return self._batcher

    def ingest(self, start: int, destination: int, riders: int = 1) -> bool:
        """Admit a trip into the micro-batched serving path.

        Unlike :meth:`book`, the answer is *deferred*: the request joins the
        current ingest window and is answered -- booked, and committed to
        the cheapest option -- when the window flushes (``batch_window``
        elapsed, ``max_batch_size`` reached, or an explicit
        :meth:`pump` / :meth:`drain`).  Returns ``True`` when admitted,
        ``False`` when a full queue shed it (``queue_capacity`` +
        ``queue_policy="shed"``).
        """
        return self.ingest_request(
            Request(
                start=start,
                destination=destination,
                riders=riders,
                max_waiting=self._config.max_waiting,
                service_constraint=self._config.service_constraint,
                submit_time=self._engine.time,
            )
        )

    def ingest_request(self, request: Request, now: Optional[float] = None) -> bool:
        """Admit a fully specified request into the micro-batched path.

        ``now`` overrides the batcher's clock reading for this admission
        (replay harnesses pass simulated time).  Returns ``True`` when
        admitted, ``False`` when shed by backpressure.
        """
        moment = self._engine.time if now is None else now
        self._journal_command(
            "admit",
            self._window_payload(
                {"request": serialize_request(request), "now": moment}
            ),
        )
        admitted = self._batcher.submit(request, now=moment)
        self._finish_command()
        return admitted

    def pump(self, now: Optional[float] = None) -> List[Booking]:
        """Flush the ingest window if its ``batch_window`` has elapsed.

        Drive this from the serving loop (the replay harness calls it every
        tick; :meth:`advance` calls it implicitly through simulated time
        only when you wire it yourself -- pumping is the caller's cadence
        decision, not the simulation's).  Returns the bookings answered
        since the previous pump/drain, in submission order -- including
        any answered by windows that ``max_batch_size`` closed inline at
        admission time.
        """
        moment = self._engine.time if now is None else now
        self._journal_command("pump", self._window_payload({"now": moment}))
        self._batcher.pump(now=moment)
        answered, self._ingest_answered = self._ingest_answered, []
        self._finish_command()
        return answered

    def drain(self, now: Optional[float] = None) -> List[Booking]:
        """Force-flush the pending ingest window (shutdown / reconfigure)."""
        moment = self._engine.time if now is None else now
        self._journal_command("drain", self._window_payload({"now": moment}))
        self._batcher.flush(now=moment)
        answered, self._ingest_answered = self._ingest_answered, []
        self._finish_command()
        return answered

    def _record_ingest_outcome(self, outcome: DispatchOutcome) -> None:
        """Book one flushed outcome (mirrors the per-request bookkeeping).

        The batch pipeline already committed the chosen option, so the
        booking arrives closed (or open with zero options when unmatched)
        and the statistics panel records the submission exactly as
        :meth:`choose` / :meth:`cancel` would have.
        """
        booking = Booking(
            booking_id=f"B{next(self._booking_counter)}",
            request=outcome.request,
            options=tuple(outcome.options),
            chosen=outcome.chosen,
            response_seconds=outcome.match_seconds,
        )
        self._bookings[booking.booking_id] = booking
        self._mark_booking_dirty(booking.booking_id)
        self._ingest_answered.append(booking)
        chosen = outcome.chosen
        if chosen is not None:
            self._mark_vehicle_dirty(chosen.vehicle_id)
        self._engine.statistics.record_submission(
            request_id=outcome.request.request_id,
            submit_time=outcome.request.submit_time,
            option_count=len(outcome.options),
            response_seconds=outcome.match_seconds,
            matched=chosen is not None,
            planned_pickup_distance=chosen.pickup_distance if chosen else 0.0,
            direct_distance=outcome.direct_distance,
        )
        if chosen is not None:
            self._engine.register_assignment(
                outcome.request.request_id, chosen.vehicle_id, chosen.pickup_distance
            )

    def book_batch(self, trips: Sequence[Tuple[int, ...]]) -> List[Booking]:
        """Batch-submit flow: one booking per ``(start, destination[, riders])``.

        All trips are answered against the current fleet state through one
        shared :class:`~repro.core.batch.BatchContext` (pooled distance trees,
        per-shard skylines merged by dominance), so a burst of simultaneous
        smartphone submissions pays the request-side routing work once per
        distinct start vertex.  A trip with broken endpoints (unknown vertex,
        unreachable destination) simply books with zero options instead of
        voiding the rest of the burst.  Every booking stays open: the riders
        choose (and the fleet commits) individually through :meth:`choose`.
        """
        requests = []
        for trip in trips:
            start, destination = trip[0], trip[1]
            riders = trip[2] if len(trip) > 2 else 1
            requests.append(
                Request(
                    start=start,
                    destination=destination,
                    riders=riders,
                    max_waiting=self._config.max_waiting,
                    service_constraint=self._config.service_constraint,
                    submit_time=self._engine.time,
                )
            )
        # Journal the *constructed* requests (ids included): request ids are
        # salted per process, so replay must re-book these exact objects.
        self._journal_command(
            "book_batch",
            {"requests": [serialize_request(request) for request in requests]},
        )
        bookings = self._book_batch_requests(requests)
        self._finish_command()
        return bookings

    def _book_batch_requests(self, requests: Sequence[Request]) -> List[Booking]:
        """The unjournaled body of :meth:`book_batch` (replay entry point)."""
        started = time.perf_counter()
        option_lists = self._dispatcher.match_batch(
            requests, apply_global_constraints=False, on_error="empty"
        )
        elapsed = time.perf_counter() - started
        per_booking = elapsed / len(requests) if requests else 0.0
        bookings: List[Booking] = []
        for request, options in zip(requests, option_lists):
            booking = Booking(
                booking_id=f"B{next(self._booking_counter)}",
                request=request,
                options=tuple(options),
                response_seconds=per_booking,
            )
            self._bookings[booking.booking_id] = booking
            self._mark_booking_dirty(booking.booking_id)
            bookings.append(booking)
        return bookings

    def options(self, booking_id: str) -> List[RideOption]:
        """Return the options of an open booking."""
        return list(self._get_booking(booking_id).options)

    def choose(self, booking_id: str, option_index: int) -> RideOption:
        """Step (iii): the rider picks option ``option_index`` (0-based).

        Raises:
            UnknownOptionError: for an invalid index or an already closed
                booking, or when the option can no longer be honoured.
        """
        self._journal_command(
            "choose", {"booking_id": booking_id, "option_index": option_index}
        )
        booking = self._get_booking(booking_id)
        if not booking.is_open:
            raise UnknownOptionError(f"booking {booking_id} is already closed")
        if not 0 <= option_index < len(booking.options):
            raise UnknownOptionError(
                f"booking {booking_id} has {len(booking.options)} options; index {option_index} is invalid"
            )
        option = booking.options[option_index]
        self._dispatcher.commit(booking.request, option)
        booking.chosen = option
        self._mark_booking_dirty(booking_id)
        self._mark_vehicle_dirty(option.vehicle_id)
        self._engine.statistics.record_submission(
            request_id=booking.request.request_id,
            submit_time=booking.request.submit_time,
            option_count=len(booking.options),
            response_seconds=booking.response_seconds,
            matched=True,
            planned_pickup_distance=option.pickup_distance,
            direct_distance=self._fleet.oracle.distance(
                booking.request.start, booking.request.destination
            ),
        )
        self._engine.register_assignment(
            booking.request.request_id, option.vehicle_id, option.pickup_distance
        )
        self._finish_command()
        return option

    def cancel(self, booking_id: str) -> None:
        """Discard an open booking (the rider walked away without choosing).

        Also accepts the *request id* of an admission still pending in the
        micro-batched ingest queue: the request is removed from the pending
        window (counted in ``IngestStatistics.cancelled``) instead of being
        flushed later as a ghost admission the rider no longer wants.

        Raises:
            ServiceError: for an unknown id, or a booking already confirmed.
        """
        self._journal_command("cancel", {"id": booking_id})
        booking = self._bookings.get(booking_id)
        if booking is None:
            # Not a booking: the rider may be cancelling before the window
            # flushed, in which case the admission is still pending under
            # its request id.
            if self._batcher.cancel(booking_id):
                self._finish_command()
                return
            raise ServiceError(f"unknown booking {booking_id!r}")
        if not booking.is_open:
            raise ServiceError(f"booking {booking_id} was already confirmed and cannot be cancelled")
        self._engine.statistics.record_submission(
            request_id=booking.request.request_id,
            submit_time=booking.request.submit_time,
            option_count=len(booking.options),
            response_seconds=booking.response_seconds,
            matched=False,
            direct_distance=self._fleet.oracle.distance(
                booking.request.start, booking.request.destination
            ),
        )
        del self._bookings[booking_id]
        self._mark_booking_dirty(booking_id)
        self._finish_command()

    def booking(self, booking_id: str) -> Booking:
        """Return a booking by id."""
        return self._get_booking(booking_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release the service's runtime resources.

        Drains the pending ingest window *before* tearing down the
        dispatcher (an admitted request is never silently dropped by a
        shutdown; the drained count is reported in
        ``IngestStatistics.close_drained``), then closes the journal and
        the dispatcher -- which shuts down the shared-memory worker pool
        and its segments when ``dispatch_workers > 1``.  Before this
        existed only :meth:`set_parameters` closed the outgoing dispatcher,
        so scripts building a multi-worker service leaked the pool until
        garbage collection.  Idempotent (the dispatcher's close is, and a
        drained queue has nothing left to drain); the service remains
        usable afterwards -- a later dispatch simply reacquires its pool,
        and the journal connection reopens lazily.

        Exception-safe: the drain runs through the batcher's
        :meth:`~repro.service.ingest.MicroBatcher.drain` (a failing flush
        consumes one request as errored and the loop keeps draining), and
        the journal and dispatcher are released in a ``finally`` -- a
        poisoned window can cost individual answers but never leaks the
        worker pool or leaves the journal connection open.
        """
        try:
            if self._batcher.pending:
                moment = self._engine.time
                self._journal_command(
                    "drain", self._window_payload({"now": moment, "close": True})
                )
                self._close_drain(moment)
                self._finish_command()
        finally:
            if self._journal is not None:
                self._journal.close()
            self._dispatcher.close()

    def _close_drain(self, now: float) -> None:
        """Drain the pending window on shutdown, counting what it held.

        Shared by :meth:`close` and the replay of its ``drain`` record
        (``"close": true`` payload), so a recovery that replays past a
        close reproduces the same ``close_drained`` counter.  Requests a
        failing flush loses mid-drain count as errored, not close-drained
        (they were never answered).
        """
        drained = self._batcher.pending
        errored_before = self._batcher.statistics.errored
        self._batcher.drain(now=now)
        errored_delta = self._batcher.statistics.errored - errored_before
        self._batcher.statistics.close_drained += drained - errored_delta
        self._ingest_answered = []

    def __enter__(self) -> "PTRiderService":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    def advance(self, duration: float) -> None:
        """Advance the world by ``duration`` time units (vehicles move, stops fire).

        Under a ``retention_horizon`` this is also where closed bookings
        age out: a booking whose trip finished (dropoff fired) more than
        the horizon ago is pruned from live state (counted in
        ``IngestStatistics.retired``); the journal stays authoritative for
        the full history.  Retirement keys on simulated time, so replaying
        the same ``advance`` records retires the same bookings.
        """
        if duration < 0:
            raise ServiceError(f"duration must be non-negative, got {duration}")
        self._journal_command("advance", {"duration": duration})
        target = self._engine.time + duration
        while self._engine.time < target - 1e-9:
            self._engine.step()
        self._mark_all_vehicles_dirty()
        self._retire_bookings()
        self._finish_command()

    def _retire_bookings(self) -> None:
        """Prune fully-served bookings past the retention horizon.

        Only bookings that are closed (chosen), whose trip completed
        (``dropoff_time`` recorded) at least ``retention_horizon`` simulated
        seconds ago, and that are not still queued for hand-back through
        :meth:`pump`/:meth:`drain` are removed.  Each removal is marked
        dirty so incremental deltas serialise the deletion.
        """
        horizon = self._config.retention_horizon
        if horizon is None:
            return
        cutoff = self._engine.time - horizon
        records = self._engine.statistics._records
        held = {booking.booking_id for booking in self._ingest_answered}
        retired = []
        for booking_id, booking in self._bookings.items():
            if booking.chosen is None or booking_id in held:
                continue
            record = records.get(booking.request.request_id)
            if record is None or record.dropoff_time is None:
                continue
            if record.dropoff_time <= cutoff:
                retired.append(booking_id)
        for booking_id in retired:
            del self._bookings[booking_id]
            self._mark_booking_dirty(booking_id)
        self._batcher.statistics.retired += len(retired)

    # ------------------------------------------------------------------
    # website interface
    # ------------------------------------------------------------------
    def vehicle_ids(self) -> List[str]:
        """Every taxi id (the website's taxi selector)."""
        return self._fleet.vehicle_ids()

    def vehicle_schedules(self, vehicle_id: str) -> List[List[Tuple[int, str, str]]]:
        """Return every valid trip schedule of a taxi as ``(vertex, kind, request)`` triples."""
        vehicle = self._fleet.get(vehicle_id)
        schedules = []
        for schedule in vehicle.kinetic_tree.schedules():
            schedules.append([(stop.vertex, stop.kind.value, stop.request_id) for stop in schedule])
        return schedules

    def unfinished_requests_of(self, vehicle_id: str) -> List[str]:
        """The website's per-taxi drop-down of unfinished requests."""
        return self._fleet.get(vehicle_id).unfinished_request_ids()

    def statistics(self) -> Dict[str, float]:
        """The live statistics panel (plus matcher work counters)."""
        panel = self._engine.statistics.panel()
        panel["current_time"] = self._engine.time
        panel["match_shards"] = float(self._config.match_shards)
        panel["dispatch_workers"] = float(self._config.dispatch_workers)
        panel.update({f"matcher_{k}": v for k, v in self._matcher.statistics.as_dict().items()})
        panel.update({f"fleet_{k}": v for k, v in self._fleet.occupancy_statistics().items()})
        batch_stats = self._dispatcher.last_batch_statistics
        if batch_stats is not None:
            # How much routing work the most recent batch shared / prefetched
            # (the website's "simultaneous requests" panel).
            panel.update(
                {
                    f"batch_{k}": v
                    for k, v in batch_stats.as_dict().items()
                    if isinstance(v, float)  # the provider name is admin-only
                }
            )
        panel.update(
            {
                f"routing_{key}": value
                for key, value in self.routing_statistics().items()
                if isinstance(value, float)
            }
        )
        return panel

    def routing_statistics(self) -> Dict[str, object]:
        """The routing-layer admin panel: who answers queries, at what cost.

        Reports the active backend and tree provider, the engine's
        query-side counters (queries, cache hits, Dijkstra runs, PHAST
        sweeps, bidirectional CH searches) and the one-time preprocessing
        attribution -- ``build_seconds`` when the compiled artifacts were
        computed this session versus ``load_seconds`` when a warm restart
        served them from the artifact cache, alongside the cache directory
        so an operator can see at a glance whether restarts are warm.
        Counter fields an engine does not track (e.g. the dict backend has
        no PHAST sweeps) read 0.0.  All float-valued fields also appear in
        :meth:`statistics` under a ``routing_`` prefix.

        The panel also reports the parallel-dispatch posture of the most
        recent batch: ``dispatch_workers`` (the configured knob),
        ``parallel_workers`` (how many worker processes actually served the
        last batch; 0.0 means it ran in-process) and ``ipc_seconds`` (wall
        time the last batch spent shipping requests out and skylines back
        over the pipes rather than computing).

        Failure containment appears under a ``dispatch_`` prefix: the
        watchdog's ``worker_kills`` / ``worker_timeouts``, pool
        ``pool_respawns``, ``batch_failures`` / ``dispatch_retries`` and
        the circuit breaker's ``breaker_state`` / ``breaker_opens`` (see
        :class:`~repro.core.dispatcher.DispatchHealth`).
        """
        engine = self._fleet.routing_engine
        stats = getattr(engine, "stats", None)
        payload: Dict[str, object] = {
            "backend": engine.backend,
            "tree_provider": engine.tree_provider_name,
            "artifact_cache_dir": self._config.routing_cache_dir or "",
        }
        for field_name in (
            "queries",
            "cache_hits",
            "dijkstra_runs",
            "phast_sweeps",
            "bidirectional_runs",
            "build_seconds",
            "load_seconds",
        ):
            payload[field_name] = float(getattr(stats, field_name, 0) or 0)
        payload["dispatch_workers"] = float(self._config.dispatch_workers)
        batch_stats = self._dispatcher.last_batch_statistics
        payload["parallel_workers"] = (
            float(batch_stats.parallel_workers) if batch_stats is not None else 0.0
        )
        payload["ipc_seconds"] = (
            float(batch_stats.ipc_seconds) if batch_stats is not None else 0.0
        )
        # The micro-batched serving path: admissions, sheds, queue depth,
        # window fill, serving throughput and the admission-to-answer
        # latency tail (nearest-rank p50/p95/p99).
        payload["ingest_queue_depth"] = float(self._batcher.pending)
        for key, value in self._batcher.statistics.as_dict().items():
            payload[f"ingest_{key}"] = value
        # Adaptive-window controller posture: the window currently in
        # force, and (adaptive mode only) the controller's EWMAs.  The
        # resize counters ride along in the ingest_ block above.
        payload["ingest_window_mode"] = self._batcher.window_mode
        payload["ingest_window"] = float(self._batcher.current_window)
        controller = self._batcher.controller_state()
        if controller is not None:
            payload["ingest_ewma_flush_wall"] = float(controller["ewma_flush_wall"])
            payload["ingest_ewma_arrival_rate"] = float(
                controller["ewma_arrival_rate"]
            )
        # Persistence-cost attribution: counts, last-file bytes and
        # cumulative wall seconds for full snapshots vs incremental deltas
        # (``snapshot_full_seconds`` is the background compaction bill
        # under snapshot_mode="incremental").
        for key, value in self._snapshot_stats.items():
            payload[f"snapshot_{key}"] = value
        # Failure-containment health: watchdog kills/timeouts, pool
        # respawns, batch failures, retries and the circuit breaker's
        # state ("closed" / "open" / "half_open") and open count.
        for key, value in self._dispatcher.health.as_dict().items():
            payload[f"dispatch_{key}"] = value
        return payload

    def set_parameters(
        self,
        max_waiting: Optional[float] = None,
        service_constraint: Optional[float] = None,
        vehicle_capacity: Optional[int] = None,
        max_pickup_distance: Optional[float] = None,
        matcher_name: Optional[str] = None,
        routing_backend: Optional[str] = None,
        table_max_vertices: Optional[int] = None,
        tree_provider: Optional[str] = None,
        match_shards: Optional[int] = None,
        dispatch_workers: Optional[int] = None,
        batch_window: Optional[float] = None,
        max_batch_size: Optional[int] = None,
        queue_capacity: Optional[int] = None,
        queue_policy: Optional[str] = None,
        worker_timeout: Optional[float] = None,
        max_dispatch_retries: Optional[int] = None,
        latency_budget: Optional[float] = None,
        batch_window_mode: Optional[str] = None,
        batch_window_min: Optional[float] = None,
        batch_window_max: Optional[float] = None,
        snapshot_mode: Optional[str] = None,
        retention_horizon: Optional[float] = None,
    ) -> SystemConfig:
        """The admin form: update global parameters and/or swap the matcher.

        Capacity changes apply to vehicles added afterwards (existing taxis
        keep their physical capacity, as they would in reality).  Changing
        ``routing_backend`` or ``tree_provider`` rebuilds the routing engine
        (and therefore its caches) on the same road network -- consulting
        the config's ``routing_cache_dir`` so a previously compiled
        artifact is loaded rather than rebuilt; the matcher and dispatcher
        are rebuilt on top of it.  ``table_max_vertices`` adjusts the
        all-pairs table's vertex cap (applied the next time a table engine
        is built).  ``match_shards`` controls how many fleet shards the
        batch dispatch pipeline partitions vehicles into; any value yields
        the same options (the per-shard skylines merge losslessly), so it
        is purely a scale-out knob.  ``dispatch_workers`` controls how many
        worker processes the batch pipeline fans the per-shard collect
        stage out to (1 keeps everything in-process); like shards it never
        changes outcomes, only wall time.

        ``batch_window`` / ``max_batch_size`` / ``queue_capacity`` /
        ``queue_policy`` reconfigure the micro-batched ingest path; the
        pending window is drained (flushed, never dropped) before the
        batcher is rebuilt on the new knobs.  ``queue_capacity=0`` removes
        the bound (maps to ``None``: unbounded).

        ``worker_timeout`` / ``max_dispatch_retries`` tune the failure
        containment of the parallel dispatch path (watchdog heartbeat
        deadline, retry attempts against a fresh pool);
        ``latency_budget`` sets the deadline-driven window close of the
        ingest path (``0`` disables it, mapping to ``None``).

        ``batch_window_mode`` switches the ingest window between a fixed
        length and the closed-loop adaptive controller;
        ``batch_window_min`` / ``batch_window_max`` bound the controller
        (``0`` restores the derived default).  ``snapshot_mode`` switches
        the durability cadence between full snapshots and incremental
        deltas with background compaction.  ``retention_horizon`` prunes
        fully-served bookings older than the horizon from live state
        (``0`` disables retention, mapping to ``None``).
        """
        provided = {
            name: value
            for name, value in (
                ("max_waiting", max_waiting),
                ("service_constraint", service_constraint),
                ("vehicle_capacity", vehicle_capacity),
                ("max_pickup_distance", max_pickup_distance),
                ("matcher_name", matcher_name),
                ("routing_backend", routing_backend),
                ("table_max_vertices", table_max_vertices),
                ("tree_provider", tree_provider),
                ("match_shards", match_shards),
                ("dispatch_workers", dispatch_workers),
                ("batch_window", batch_window),
                ("max_batch_size", max_batch_size),
                ("queue_capacity", queue_capacity),
                ("queue_policy", queue_policy),
                ("worker_timeout", worker_timeout),
                ("max_dispatch_retries", max_dispatch_retries),
                ("latency_budget", latency_budget),
                ("batch_window_mode", batch_window_mode),
                ("batch_window_min", batch_window_min),
                ("batch_window_max", batch_window_max),
                ("snapshot_mode", snapshot_mode),
                ("retention_horizon", retention_horizon),
            )
            if value is not None
        }
        self._journal_command("set_parameters", {"changes": provided})
        changes: Dict[str, object] = {}
        if max_waiting is not None:
            changes["max_waiting"] = max_waiting
        if service_constraint is not None:
            changes["service_constraint"] = service_constraint
        if vehicle_capacity is not None:
            changes["vehicle_capacity"] = vehicle_capacity
        if max_pickup_distance is not None:
            changes["max_pickup_distance"] = max_pickup_distance
        if table_max_vertices is not None:
            changes["table_max_vertices"] = table_max_vertices
        if match_shards is not None:
            changes["match_shards"] = match_shards
        if dispatch_workers is not None:
            changes["dispatch_workers"] = dispatch_workers
        if batch_window is not None:
            changes["batch_window"] = batch_window
        if max_batch_size is not None:
            changes["max_batch_size"] = max_batch_size
        if queue_capacity is not None:
            changes["queue_capacity"] = None if queue_capacity == 0 else queue_capacity
        if queue_policy is not None:
            changes["queue_policy"] = queue_policy
        if worker_timeout is not None:
            changes["worker_timeout"] = worker_timeout
        if max_dispatch_retries is not None:
            changes["max_dispatch_retries"] = max_dispatch_retries
        if latency_budget is not None:
            changes["latency_budget"] = None if latency_budget == 0 else latency_budget
        if batch_window_mode is not None:
            changes["batch_window_mode"] = batch_window_mode
        if batch_window_min is not None:
            changes["batch_window_min"] = (
                None if batch_window_min == 0 else batch_window_min
            )
        if batch_window_max is not None:
            changes["batch_window_max"] = (
                None if batch_window_max == 0 else batch_window_max
            )
        if snapshot_mode is not None:
            changes["snapshot_mode"] = snapshot_mode
        if retention_horizon is not None:
            changes["retention_horizon"] = (
                None if retention_horizon == 0 else retention_horizon
            )
        if matcher_name is not None:
            if matcher_name not in MATCHER_REGISTRY:
                raise ConfigurationError(
                    f"unknown matcher {matcher_name!r}; choose one of {sorted(MATCHER_REGISTRY)}"
                )
            if matcher_name in SystemConfig._VALID_MATCHERS:
                changes["matcher_name"] = matcher_name
        if routing_backend is not None:
            if routing_backend not in ROUTING_BACKENDS:
                raise ConfigurationError(
                    f"unknown routing backend {routing_backend!r}; choose one of {ROUTING_BACKENDS}"
                )
            changes["routing_backend"] = routing_backend
        if tree_provider is not None:
            if tree_provider not in TREE_PROVIDERS:
                raise ConfigurationError(
                    f"unknown tree provider {tree_provider!r}; choose one of {TREE_PROVIDERS}"
                )
            changes["tree_provider"] = tree_provider
        if (
            tree_provider is None
            and routing_backend is not None
            and routing_backend != "ch"
            and self._config.tree_provider != "auto"
        ):
            # A forced provider is a ch-only ablation; a plain backend
            # change away from ch must not be vetoed by it (make_engine
            # rejects e.g. "phast" without a hierarchy), so the provider
            # resets to "auto" unless the caller forces both at once.
            changes["tree_provider"] = "auto"
        new_config = self._config.with_updates(**changes) if changes else self._config
        rebuild_engine = (
            routing_backend is not None
            and routing_backend != self._fleet.routing_engine.backend
        ) or (
            tree_provider is not None and tree_provider != self._config.tree_provider
        )
        if rebuild_engine:
            # Build the engine *before* committing the new config: a refused
            # build (e.g. "table" beyond table_max_vertices, or "phast" on a
            # backend without a hierarchy) must leave the service exactly as
            # it was, not claiming a configuration it never got.
            engine = make_engine(
                self._fleet.grid.network,
                new_config.routing_backend,
                table_max_vertices=new_config.table_max_vertices,
                cache_dir=new_config.routing_cache_dir,
                tree_provider=new_config.tree_provider,
            )
            self._fleet.set_routing_engine(engine)
        self._config = new_config
        if matcher_name is not None:
            self._matcher = self._build_matcher(matcher_name)
        else:
            self._matcher = self._build_matcher(type(self._matcher).name)
        # Drain the ingest window through the *old* dispatcher before it is
        # replaced: admitted requests must be answered, never dropped by a
        # reconfiguration.  The outgoing dispatcher may also own a live
        # worker pool pinned to the old engine/matcher; release its
        # shared-memory segments before the replacement takes over.
        self._batcher.flush()
        self._dispatcher.close()
        self._dispatcher = Dispatcher(self._fleet, self._matcher, self._config)
        self._engine._dispatcher = self._dispatcher  # keep the engine on the new dispatcher
        if self._journal is not None:
            # The journal's annotation hook must follow the service onto
            # the rebuilt dispatcher, or post-reconfigure flush outcomes
            # would silently stop being recorded.
            self._dispatcher.outcome_listener = self._record_outcome_annotation
        ingest_statistics = self._batcher.statistics
        self._batcher = self._build_batcher()
        # Counters survive the rebuild: the admin panel's ingest series
        # must stay continuous across a reconfiguration.
        self._batcher.statistics = ingest_statistics
        self._finish_command()
        return self._config

    # ------------------------------------------------------------------
    def _get_booking(self, booking_id: str) -> Booking:
        try:
            return self._bookings[booking_id]
        except KeyError:
            raise ServiceError(f"unknown booking {booking_id!r}") from None


def build_system(
    network: Optional[RoadNetwork] = None,
    network_rows: int = 15,
    network_columns: int = 15,
    vehicles: int = 30,
    capacity: int = 4,
    grid_rows: int = 8,
    grid_columns: int = 8,
    config: Optional[SystemConfig] = None,
    seed: Optional[int] = None,
    routing: Optional[str] = None,
    routing_cache: Optional[str] = None,
    tree_provider: Optional[str] = None,
    dispatch_workers: Optional[int] = None,
    batch_window: Optional[float] = None,
    max_batch_size: Optional[int] = None,
    queue_capacity: Optional[int] = None,
    queue_policy: Optional[str] = None,
    worker_timeout: Optional[float] = None,
    max_dispatch_retries: Optional[int] = None,
    latency_budget: Optional[float] = None,
    batch_window_mode: Optional[str] = None,
    batch_window_min: Optional[float] = None,
    batch_window_max: Optional[float] = None,
    durability: Optional[str] = None,
    journal_path: Optional[str] = None,
    snapshot_interval: Optional[int] = None,
    snapshot_mode: Optional[str] = None,
    retention_horizon: Optional[float] = None,
) -> PTRiderService:
    """Build a ready-to-use PTRider system.

    Args:
        network: an existing road network; when omitted a Manhattan grid of
            ``network_rows x network_columns`` is generated.
        vehicles: number of taxis, placed uniformly at random (Section 4).
        capacity: seats per taxi.
        grid_rows / grid_columns: granularity of the grid index.
        config: global parameters (a default :class:`SystemConfig` otherwise,
            with the requested capacity).
        seed: seed controlling vehicle placement and idle wandering.
        routing: routing backend override ("dict", "csr", "csr+alt", "table"
            or "ch"); defaults to the config's ``routing_backend``.
        routing_cache: compiled-artifact cache directory override; defaults
            to the config's ``routing_cache_dir``.
        tree_provider: tree-provider override ("auto", "plane" or "phast");
            defaults to the config's ``tree_provider``.
        dispatch_workers: worker processes for the batch dispatch pipeline
            (1 keeps dispatch in-process); defaults to the config's
            ``dispatch_workers``.
        batch_window: micro-batch window length override for the ingest
            path; defaults to the config's ``batch_window``.
        max_batch_size: ingest window size cap override; defaults to the
            config's ``max_batch_size``.
        queue_capacity: ingest queue bound override (``0`` = unbounded);
            defaults to the config's ``queue_capacity``.
        queue_policy: full-queue policy override ("shed" or "block");
            defaults to the config's ``queue_policy``.
        worker_timeout: dispatch-worker heartbeat deadline override (wall
            seconds before a silent worker is declared hung and killed);
            defaults to the config's ``worker_timeout``.
        max_dispatch_retries: retry attempts for a failed ``begin_batch``
            against a freshly spawned pool (``0`` disables retry);
            defaults to the config's ``max_dispatch_retries``.
        latency_budget: deadline-driven window close for the ingest path
            (``0`` disables it); defaults to the config's
            ``latency_budget``.
        batch_window_mode: ingest window mode override ("fixed" or
            "adaptive"); defaults to the config's ``batch_window_mode``.
        batch_window_min: adaptive controller's lower window bound
            (``0`` restores the derived default); defaults to the config's
            ``batch_window_min``.
        batch_window_max: adaptive controller's upper window bound
            (``0`` restores the derived default); defaults to the config's
            ``batch_window_max``.
        durability: durability mode override ("off", "journal" or
            "journal+snapshot"); defaults to the config's ``durability``.
        journal_path: journal directory override (required when durability
            is on); defaults to the config's ``journal_path``.
        snapshot_interval: journal records between automatic snapshots
            under "journal+snapshot"; defaults to the config's
            ``snapshot_interval``.
        snapshot_mode: snapshot cadence mode override ("full" or
            "incremental"); defaults to the config's ``snapshot_mode``.
        retention_horizon: age past which fully-served bookings are pruned
            from live state (``0`` disables retention); defaults to the
            config's ``retention_horizon``.

    Returns:
        A :class:`PTRiderService` whose fleet is registered and idle.
    """
    rng = random.Random(seed)
    if network is None:
        network = grid_network(network_rows, network_columns, spacing=1.0, weight_jitter=0.25, seed=seed)
    system_config = config or SystemConfig(vehicle_capacity=capacity)
    if routing is not None and routing != system_config.routing_backend:
        system_config = system_config.with_updates(routing_backend=routing)
    if routing_cache is not None and routing_cache != system_config.routing_cache_dir:
        system_config = system_config.with_updates(routing_cache_dir=routing_cache)
    if tree_provider is not None and tree_provider != system_config.tree_provider:
        system_config = system_config.with_updates(tree_provider=tree_provider)
    if dispatch_workers is not None and dispatch_workers != system_config.dispatch_workers:
        system_config = system_config.with_updates(dispatch_workers=dispatch_workers)
    if batch_window is not None and batch_window != system_config.batch_window:
        system_config = system_config.with_updates(batch_window=batch_window)
    if max_batch_size is not None and max_batch_size != system_config.max_batch_size:
        system_config = system_config.with_updates(max_batch_size=max_batch_size)
    if queue_capacity is not None:
        bound = None if queue_capacity == 0 else queue_capacity
        if bound != system_config.queue_capacity:
            system_config = system_config.with_updates(queue_capacity=bound)
    if queue_policy is not None and queue_policy != system_config.queue_policy:
        system_config = system_config.with_updates(queue_policy=queue_policy)
    if worker_timeout is not None and worker_timeout != system_config.worker_timeout:
        system_config = system_config.with_updates(worker_timeout=worker_timeout)
    if (
        max_dispatch_retries is not None
        and max_dispatch_retries != system_config.max_dispatch_retries
    ):
        system_config = system_config.with_updates(
            max_dispatch_retries=max_dispatch_retries
        )
    if latency_budget is not None:
        budget = None if latency_budget == 0 else latency_budget
        if budget != system_config.latency_budget:
            system_config = system_config.with_updates(latency_budget=budget)
    if batch_window_mode is not None and batch_window_mode != system_config.batch_window_mode:
        system_config = system_config.with_updates(batch_window_mode=batch_window_mode)
    if batch_window_min is not None:
        bound = None if batch_window_min == 0 else batch_window_min
        if bound != system_config.batch_window_min:
            system_config = system_config.with_updates(batch_window_min=bound)
    if batch_window_max is not None:
        bound = None if batch_window_max == 0 else batch_window_max
        if bound != system_config.batch_window_max:
            system_config = system_config.with_updates(batch_window_max=bound)
    if snapshot_mode is not None and snapshot_mode != system_config.snapshot_mode:
        system_config = system_config.with_updates(snapshot_mode=snapshot_mode)
    if retention_horizon is not None:
        horizon = None if retention_horizon == 0 else retention_horizon
        if horizon != system_config.retention_horizon:
            system_config = system_config.with_updates(retention_horizon=horizon)
    durability_changes: Dict[str, object] = {}
    if journal_path is not None and journal_path != system_config.journal_path:
        durability_changes["journal_path"] = journal_path
    if durability is not None and durability != system_config.durability:
        durability_changes["durability"] = durability
    if (
        snapshot_interval is not None
        and snapshot_interval != system_config.snapshot_interval
    ):
        durability_changes["snapshot_interval"] = snapshot_interval
    if durability_changes:
        # One update for all three: turning durability on is only valid
        # together with its journal_path (the config validates the pair).
        system_config = system_config.with_updates(**durability_changes)
    engine = make_engine(
        network,
        system_config.routing_backend,
        table_max_vertices=system_config.table_max_vertices,
        cache_dir=system_config.routing_cache_dir,
        tree_provider=system_config.tree_provider,
    )
    grid = GridIndex(network, rows=grid_rows, columns=grid_columns)
    fleet = Fleet(grid, engine)
    vertices = network.vertices()
    for index in range(vehicles):
        location = rng.choice(vertices)
        fleet.add_vehicle(
            Vehicle(f"c{index + 1}", location=location, capacity=system_config.vehicle_capacity)
        )
    return PTRiderService(fleet, config=system_config, seed=seed)
