"""Micro-batched request ingest: the production serving path.

``PTRiderService.book`` answers one request at a time, which means the
fastest machinery in the repository -- the staged batch pipeline with its
vectorised tree prefetch, fleet-plane leg trees, sharded matching and the
shared-memory worker pool -- was only reachable by callers that hand-assemble
batches.  :class:`MicroBatcher` closes that gap: incoming requests accumulate
in a *window* that is flushed through
:meth:`~repro.core.dispatcher.Dispatcher.dispatch_batch` when either

* ``batch_window`` time units have passed since the window's first
  admission (time is read from an injectable clock, so replay drives the
  batcher on simulated time and a live deployment on wall time), or
* the window reaches ``max_batch_size`` requests,

whichever comes first.  Because the batch pipeline is property-tested
byte-identical to the sequential greedy loop, micro-batching changes *when*
work happens but never *what* is answered: every window's outcomes are
bit-for-bit the outcomes of ``dispatch_batch`` on the same requests.

Backpressure is explicit, bounded and *deadline-aware*.  Every admission
carries an implicit deadline -- ``admit_time + max_waiting / speed``, the
moment the rider's waiting-time slack runs out (``max_waiting`` is a
distance; ``speed`` converts it to clock units).  With ``queue_capacity``
set, an admission that would grow the pending window beyond capacity
follows ``queue_policy``:

* ``"shed"`` -- overload evicts by *priority*, not arrival order: the
  pending admission with the loosest (latest) deadline is dropped to make
  room, provided its deadline is strictly looser than the incoming
  request's; otherwise the incoming request itself is refused (``submit``
  returns ``False``).  Under pressure the queue therefore keeps the
  tightest-deadline work -- the requests with the least slack to spare --
  instead of whoever happened to arrive first.  Evictions and refusals are
  both counted (:attr:`IngestStatistics.evicted` /
  :attr:`IngestStatistics.shed`);
* ``"block"`` -- the pending window is flushed inline to free capacity
  before the request is admitted (in this synchronous model, "blocking" the
  producer *is* running the consumer), trading admission latency for
  acceptance.

Either way the pending queue never exceeds ``queue_capacity`` -- the
property tests in ``tests/property/test_ingest_backpressure.py`` and
``tests/property/test_deadline_shedding.py`` drive random surge schedules
against both policies to pin those invariants.

A ``latency_budget`` adds the deadline-driven window close: :meth:`pump`
force-closes the pending window as soon as the oldest pending deadline is
within the budget of the clock, so a generous ``batch_window`` cannot
silently blow a rider's deadline while the window fills.  Answers produced
after their request's deadline are counted in
:attr:`IngestStatistics.deadline_misses`.

With ``window_mode="adaptive"`` the window length itself becomes a
*closed-loop* control variable instead of a static knob.
:class:`WindowController` tracks an EWMA of the observed flush wall (how
long ``dispatch_batch`` took) and of the arrival rate per window, and
multiplicatively grows or shrinks the next window on the flush-wall /
window-length ratio: a flush wall that eats more than half the window
means the dispatch pipeline barely keeps up, so the window grows (bigger
batches amortise the per-flush cost); a flush wall under a quarter of the
window means dispatch is idling while admitted requests queue, so the
window shrinks (cutting admission-to-answer latency).  The window stays
inside ``[window_min, window_max]`` and -- when a ``latency_budget`` is
set -- never exceeds the budget headroom left after the expected flush
wall, so the controller cannot tune itself past the deadline close.  The
controller reads time exclusively through the injectable ``wall_clock``,
so property tests drive it deterministically and journal replay pins the
recorded window trajectory exactly (see
:func:`repro.service.recovery.apply_record`).

:class:`IngestStatistics` instruments the path end to end: admissions,
answers, sheds/evictions, window close reasons, deadline misses, queue
depth, window fill ratio, and per-request admission-to-answer latency
(queue wait in clock units plus the request's share of in-flush wall time)
summarised as nearest-rank p50/p95/p99 by :func:`percentiles`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.dispatcher import DispatchOutcome, Dispatcher, OptionPolicy
from repro.errors import ConfigurationError
from repro.model.request import Request
from repro.service.faults import fire as _fire_fault

__all__ = [
    "MicroBatcher",
    "IngestStatistics",
    "WindowController",
    "percentiles",
    "batcher_from_config",
]

#: Ranks reported by :meth:`IngestStatistics.as_dict`.
DEFAULT_RANKS = (50, 95, 99)

#: Window-length modes of the micro-batcher.
WINDOW_MODES = ("fixed", "adaptive")


def percentiles(
    values: Sequence[float], ranks: Sequence[int] = DEFAULT_RANKS
) -> Dict[str, float]:
    """Nearest-rank percentiles of ``values`` keyed ``"p<rank>"``.

    The nearest-rank definition: the p-th percentile of ``n`` sorted values
    is the value at (1-based) position ``ceil(p / 100 * n)`` -- always an
    actually observed value, never an interpolation, which is the right
    summary for latency tails (an interpolated p99 can report a latency no
    request ever experienced).  An empty input returns an empty dict.

    Args:
        values: the observations (any order).
        ranks: percentile ranks in (0, 100].
    """
    if not values:
        return {}
    ordered = sorted(values)
    count = len(ordered)
    result: Dict[str, float] = {}
    for rank in ranks:
        if not 0 < rank <= 100:
            raise ConfigurationError(f"percentile rank must be in (0, 100], got {rank}")
        position = max(1, math.ceil(rank / 100.0 * count))
        result[f"p{rank}"] = ordered[position - 1]
    return result


class WindowController:
    """Closed-loop auto-tuner of the micro-batch window length.

    The control law is multiplicative-increase / multiplicative-decrease
    (MIMD) on the ratio of the EWMA'd flush wall to the current window
    length:

    * ``ratio > HIGH_RATIO`` (flushes eat most of the window): the dispatch
      pipeline barely keeps up with the window cadence -- grow the window
      by :data:`GROW` so bigger batches amortise the per-flush cost;
    * ``ratio < LOW_RATIO`` (flushes are cheap relative to the window):
      dispatch idles while admissions queue -- shrink the window by
      :data:`SHRINK` to cut admission-to-answer latency;
    * in between: hold.  The dead band is wider (2x) than the step factor
      (1.5x), so under a stationary flush wall the window converges into
      the band and stays there instead of oscillating across it.

    The window is clamped to ``[window_min, window_max]``; with a
    ``latency_budget`` the upper bound additionally shrinks to the budget
    headroom left after the expected flush wall
    (``latency_budget - ewma_flush_wall``, floored at ``window_min``), so
    the controller never schedules a close the deadline-driven close would
    have to pre-empt.  The arrival-rate EWMA is tracked per window for the
    operator panel (requests/clock-unit the path is absorbing).

    The controller itself never reads a clock -- callers feed it observed
    flush walls -- so driving it with synthetic observations (the property
    suite) or replay-pinned windows (journal recovery) is exact.
    """

    #: multiplicative step applied when the window grows / shrinks
    GROW = 1.5
    SHRINK = 1.5
    #: flush-wall / window ratio above which the window grows
    HIGH_RATIO = 0.5
    #: flush-wall / window ratio below which the window shrinks
    LOW_RATIO = 0.25
    #: EWMA smoothing factor for both tracked signals
    ALPHA = 0.3

    def __init__(
        self,
        window: float,
        window_min: float,
        window_max: float,
        latency_budget: Optional[float] = None,
    ) -> None:
        if window_min <= 0:
            raise ConfigurationError(
                f"window_min must be positive, got {window_min}"
            )
        if window_max < window_min:
            raise ConfigurationError(
                f"window_max must be >= window_min, got "
                f"[{window_min}, {window_max}]"
            )
        if latency_budget is not None and window_min > latency_budget:
            raise ConfigurationError(
                f"window_min ({window_min}) must not exceed latency_budget "
                f"({latency_budget}): the smallest window must fit the budget"
            )
        self._window_min = window_min
        self._window_max = window_max
        self._latency_budget = latency_budget
        self.ewma_flush_wall = 0.0
        self.ewma_arrival_rate = 0.0
        self._wall_observed = False
        self._rate_observed = False
        self._window = self._clamp(window)

    @property
    def window(self) -> float:
        """The current window length (always inside the bounds)."""
        return self._window

    @property
    def window_min(self) -> float:
        return self._window_min

    @property
    def window_max(self) -> float:
        return self._window_max

    def _upper_bound(self) -> float:
        upper = self._window_max
        if self._latency_budget is not None:
            headroom = self._latency_budget - self.ewma_flush_wall
            upper = min(upper, max(self._window_min, headroom))
        return upper

    def _clamp(self, window: float) -> float:
        return min(max(window, self._window_min), self._upper_bound())

    def set_window(self, window: float) -> None:
        """Pin the window (journal replay / snapshot restore), clamped."""
        self._window = self._clamp(window)

    def observe(
        self, flush_wall: float, batch_size: int, window_span: float
    ) -> int:
        """Feed one flush observation; returns -1/0/+1 (shrunk/held/grown).

        ``flush_wall`` is the wall time the flush's ``dispatch_batch``
        took, ``batch_size`` how many requests it answered and
        ``window_span`` how long the window accumulated in clock units
        (0 for a size-close at admission time).
        """
        if self._wall_observed:
            self.ewma_flush_wall = (
                self.ALPHA * flush_wall
                + (1.0 - self.ALPHA) * self.ewma_flush_wall
            )
        else:
            self.ewma_flush_wall = flush_wall
            self._wall_observed = True
        if window_span > 1e-12:
            rate = batch_size / window_span
            if self._rate_observed:
                self.ewma_arrival_rate = (
                    self.ALPHA * rate
                    + (1.0 - self.ALPHA) * self.ewma_arrival_rate
                )
            else:
                self.ewma_arrival_rate = rate
                self._rate_observed = True
        previous = self._window
        ratio = self.ewma_flush_wall / self._window
        if ratio > self.HIGH_RATIO:
            target = self._window * self.GROW
        elif ratio < self.LOW_RATIO:
            target = self._window / self.SHRINK
        else:
            target = self._window
        self._window = self._clamp(target)
        if self._window > previous + 1e-15:
            return 1
        if self._window < previous - 1e-15:
            return -1
        return 0

    def state(self) -> Dict[str, object]:
        """JSON-able controller state (snapshot payload)."""
        return {
            "window": self._window,
            "ewma_flush_wall": self.ewma_flush_wall,
            "ewma_arrival_rate": self.ewma_arrival_rate,
            "wall_observed": self._wall_observed,
            "rate_observed": self._rate_observed,
        }

    def restore(self, payload: Dict[str, object]) -> None:
        """Overwrite the controller state from :meth:`state` (restore)."""
        self.ewma_flush_wall = float(payload.get("ewma_flush_wall", 0.0))
        self.ewma_arrival_rate = float(payload.get("ewma_arrival_rate", 0.0))
        self._wall_observed = bool(payload.get("wall_observed", False))
        self._rate_observed = bool(payload.get("rate_observed", False))
        self._window = self._clamp(float(payload.get("window", self._window)))


@dataclass
class IngestStatistics:
    """End-to-end instrumentation of the micro-batched serving path.

    Conservation invariant (checked by the unit and property tests):
    ``admitted == answered + pending + errored + cancelled + evicted`` at
    every quiescent point, and ``shed`` counts refused admissions that never
    entered the queue.
    """

    #: requests accepted into the pending window
    admitted: int = 0
    #: requests answered by a flushed window (outcomes delivered)
    answered: int = 0
    #: admissions refused because the queue was full under the "shed" policy
    shed: int = 0
    #: admitted requests dropped from a full queue to make room for a
    #: tighter-deadline admission (deadline-ordered shedding)
    evicted: int = 0
    #: requests lost to a mid-flush error (the dispatch raised at their turn)
    errored: int = 0
    #: admitted requests removed from the pending window by a cancellation
    cancelled: int = 0
    #: of the answered requests, how many were drained by ``close()``
    #: (admitted but still unflushed when the service shut down)
    close_drained: int = 0
    #: windows flushed because they reached ``max_batch_size``
    size_closed: int = 0
    #: windows flushed because ``batch_window`` elapsed
    window_closed: int = 0
    #: windows flushed by an explicit ``flush()`` / drain or a "block" admit
    forced: int = 0
    #: windows force-closed because the oldest pending admission came
    #: within ``latency_budget`` of its deadline
    deadline_closed: int = 0
    #: answers produced after their request's deadline had already passed
    deadline_misses: int = 0
    #: adaptive-mode window resizes: how often the controller grew the
    #: window (flush wall crowding the window) / shrank it (dispatch idling)
    window_grown: int = 0
    window_shrunk: int = 0
    #: fully-served bookings pruned from live service state by the
    #: ``retention_horizon`` knob (the journal stays authoritative); the
    #: booking conservation check reads
    #: ``bookings_created == live + retired + cancelled_open``
    retired: int = 0
    #: highest pending-queue depth ever observed
    peak_queue_depth: int = 0
    #: wall seconds spent inside ``dispatch_batch`` flushes
    serving_seconds: float = 0.0
    #: per-flush window fill ratios (``len(window) / max_batch_size``)
    window_fills: List[float] = field(default_factory=list)
    #: per-request admission-to-answer latencies (clock wait + flush wall)
    latencies: List[float] = field(default_factory=list)

    @property
    def flushes(self) -> int:
        """Windows flushed, whatever closed them."""
        return self.size_closed + self.window_closed + self.forced + self.deadline_closed

    @property
    def throughput(self) -> float:
        """Answered requests per wall second spent serving (0 before any flush)."""
        if self.serving_seconds <= 0:
            return 0.0
        return self.answered / self.serving_seconds

    @property
    def mean_window_fill(self) -> float:
        """Mean window fill ratio across flushes (0 before any flush)."""
        if not self.window_fills:
            return 0.0
        return sum(self.window_fills) / len(self.window_fills)

    def as_dict(self) -> Dict[str, float]:
        """Flat float dictionary for panels and benchmark records."""
        payload: Dict[str, float] = {
            "admitted": float(self.admitted),
            "answered": float(self.answered),
            "shed": float(self.shed),
            "evicted": float(self.evicted),
            "errored": float(self.errored),
            "cancelled": float(self.cancelled),
            "close_drained": float(self.close_drained),
            "flushes": float(self.flushes),
            "size_closed": float(self.size_closed),
            "window_closed": float(self.window_closed),
            "forced": float(self.forced),
            "deadline_closed": float(self.deadline_closed),
            "deadline_misses": float(self.deadline_misses),
            "window_grown": float(self.window_grown),
            "window_shrunk": float(self.window_shrunk),
            "retired": float(self.retired),
            "peak_queue_depth": float(self.peak_queue_depth),
            "serving_seconds": self.serving_seconds,
            "throughput": self.throughput,
            "mean_window_fill": self.mean_window_fill,
        }
        for name, value in percentiles(self.latencies).items():
            payload[f"latency_{name}"] = value
        return payload


class MicroBatcher:
    """Accumulate requests into windows and flush them through the batch pipeline.

    Args:
        dispatcher: the dispatcher whose ``dispatch_batch`` serves flushes.
        batch_window: clock time a window may accumulate before a
            :meth:`pump` flushes it (> 0).
        max_batch_size: request count that force-closes a window at
            admission time (>= 1).
        queue_capacity: bound on the pending window; ``None`` = unbounded.
        queue_policy: ``"shed"`` or ``"block"`` (see the module docstring).
        speed: vehicle speed (``SystemConfig.speed``) converting each
            request's ``max_waiting`` distance slack into clock units for
            its deadline.
        latency_budget: force-close the pending window when the oldest
            admission is within this many clock units of its deadline
            (``None`` disables the deadline-driven close).
        window_mode: ``"fixed"`` keeps ``batch_window`` static;
            ``"adaptive"`` hands the window length to a
            :class:`WindowController` seeded at ``batch_window`` and
            bounded by ``window_min`` / ``window_max``.
        window_min: adaptive-mode lower bound on the window length
            (defaults to ``batch_window / 16``).
        window_max: adaptive-mode upper bound on the window length
            (defaults to ``batch_window * 16``).
        policy: the stand-in rider choosing from each skyline.
        shards: shard-count override forwarded to ``dispatch_batch``.
        workers: worker-count override forwarded to ``dispatch_batch``.
        prefetch_legs: fold the fleet's leg sources into each flush's
            prefetch plane (the serving-path optimisation; on by default).
        clock: zero-argument callable read at admissions and pumps.
            Defaults to ``time.monotonic`` (wall time); replay passes
            simulated time via the ``now`` argument of the public methods
            instead, which always overrides the clock.
        wall_clock: zero-argument callable measuring flush wall time
            (serving_seconds, per-request latency shares, and the adaptive
            controller's flush-wall observations).  Defaults to
            ``time.perf_counter``; the property suite injects a
            deterministic counter so adaptive trajectories are exact.
        on_outcome: optional callback invoked with every answered outcome
            as its commit lands (the service layer records bookings here).
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        batch_window: float = 1.0,
        max_batch_size: int = 512,
        queue_capacity: Optional[int] = None,
        queue_policy: str = "shed",
        speed: float = 1.0,
        latency_budget: Optional[float] = None,
        window_mode: str = "fixed",
        window_min: Optional[float] = None,
        window_max: Optional[float] = None,
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        shards: Optional[int] = None,
        workers: Optional[int] = None,
        prefetch_legs: bool = True,
        clock: Optional[Callable[[], float]] = None,
        wall_clock: Optional[Callable[[], float]] = None,
        on_outcome: Optional[Callable[[DispatchOutcome], None]] = None,
    ) -> None:
        if batch_window <= 0:
            raise ConfigurationError(f"batch_window must be positive, got {batch_window}")
        if max_batch_size < 1:
            raise ConfigurationError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if queue_capacity is not None and queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1 or None, got {queue_capacity}"
            )
        if queue_policy not in ("shed", "block"):
            raise ConfigurationError(
                f"queue_policy must be 'shed' or 'block', got {queue_policy!r}"
            )
        if speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {speed}")
        if latency_budget is not None and latency_budget <= 0:
            raise ConfigurationError(
                f"latency_budget must be positive or None, got {latency_budget}"
            )
        if window_mode not in WINDOW_MODES:
            raise ConfigurationError(
                f"window_mode must be one of {WINDOW_MODES}, got {window_mode!r}"
            )
        self._dispatcher = dispatcher
        self._batch_window = batch_window
        self._max_batch_size = max_batch_size
        self._queue_capacity = queue_capacity
        self._queue_policy = queue_policy
        self._speed = speed
        self._latency_budget = latency_budget
        self._policy = policy
        self._shards = shards
        self._workers = workers
        self._prefetch_legs = prefetch_legs
        self._clock = clock or time.monotonic
        self._wall_clock = wall_clock or time.perf_counter
        self._on_outcome = on_outcome
        self._window_mode = window_mode
        self._controller: Optional[WindowController] = None
        if window_mode == "adaptive":
            self._controller = WindowController(
                window=batch_window,
                window_min=(
                    batch_window / 16.0 if window_min is None else window_min
                ),
                window_max=(
                    batch_window * 16.0 if window_max is None else window_max
                ),
                latency_budget=latency_budget,
            )
        self._pending: List[Tuple[Request, float]] = []
        self._window_opened: Optional[float] = None
        #: bumped on every mutation of ``_pending`` that is NOT a plain
        #: append (flush, eviction, cancel, error re-queue, restore).  While
        #: the epoch holds, any earlier observation of the queue is a stable
        #: prefix of the current one -- incremental snapshot deltas use this
        #: to ship only the requests admitted since the last snapshot point
        #: instead of the whole window.
        self._pending_epoch = 0
        self.statistics = IngestStatistics()

    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Requests admitted but not yet answered (the queue depth)."""
        return len(self._pending)

    @property
    def window_opened(self) -> Optional[float]:
        """When the current window opened (``None`` while empty)."""
        return self._window_opened

    @property
    def pending_epoch(self) -> int:
        """Monotonic count of non-append pending-queue mutations.

        Two readings with the same epoch guarantee the earlier queue is a
        stable prefix of the later one (only appends happened in between).
        """
        return self._pending_epoch

    def pending_entries(self) -> List[Tuple[Request, float]]:
        """The pending window as ``(request, admit_time)`` pairs, in order.

        Read by the durability snapshotter so admitted-but-unflushed
        requests survive a restart.
        """
        return list(self._pending)

    def restore_pending(
        self,
        entries: Sequence[Tuple[Request, float]],
        window_opened: Optional[float],
    ) -> None:
        """Overwrite the pending window (snapshot restore).

        Counters are *not* touched -- the snapshot restores
        :attr:`statistics` separately, and these entries were already
        counted as admitted when they first entered the queue.
        """
        self._pending = list(entries)
        self._window_opened = window_opened if self._pending else None
        self._pending_epoch += 1

    @property
    def batch_window(self) -> float:
        return self._batch_window

    @property
    def window_mode(self) -> str:
        """``"fixed"`` or ``"adaptive"``."""
        return self._window_mode

    @property
    def controller(self) -> Optional[WindowController]:
        """The adaptive window controller (``None`` in fixed mode)."""
        return self._controller

    @property
    def current_window(self) -> float:
        """The window length the next pump closes against.

        In fixed mode this is ``batch_window``; in adaptive mode it is the
        controller's current (bounded) window.
        """
        if self._controller is not None:
            return self._controller.window
        return self._batch_window

    def set_window(self, window: float) -> None:
        """Pin the adaptive window (journal replay drives this so replayed
        window-close decisions match the recorded run exactly; a no-op in
        fixed mode)."""
        if self._controller is not None:
            self._controller.set_window(window)

    def controller_state(self) -> Optional[Dict[str, object]]:
        """The adaptive controller's snapshot payload (``None`` if fixed)."""
        if self._controller is None:
            return None
        return self._controller.state()

    def restore_controller(self, payload: Optional[Dict[str, object]]) -> None:
        """Restore the controller from :meth:`controller_state` output."""
        if self._controller is not None and payload:
            self._controller.restore(payload)

    @property
    def max_batch_size(self) -> int:
        return self._max_batch_size

    @property
    def queue_capacity(self) -> Optional[int]:
        return self._queue_capacity

    @property
    def queue_policy(self) -> str:
        return self._queue_policy

    def _now(self, now: Optional[float]) -> float:
        return self._clock() if now is None else now

    def deadline(self, request: Request, admit_time: float) -> float:
        """When an admission's waiting slack runs out, in clock units.

        ``max_waiting`` is a distance (the paper's global ``w``); dividing
        by the configured speed converts it to the time the rider is
        willing to wait past admission.  Pure derivation -- deadlines are
        never stored, so pending entries (and their snapshots) stay plain
        ``(request, admit_time)`` pairs.
        """
        return admit_time + request.max_waiting / self._speed

    def _evict_loosest(self, incoming: Request, moment: float) -> bool:
        """Deadline-ordered shedding: drop the loosest-deadline admission.

        Scans the pending window for the entry with the latest deadline and
        evicts it *only* when that deadline is strictly later than the
        incoming request's (ties keep the incumbents -- they were admitted
        first and re-ordering equals buys nothing).  Returns ``True`` when a
        slot was freed for the incoming request.
        """
        loosest = self.deadline(incoming, moment)
        loosest_index = None
        for index, (pending, admitted) in enumerate(self._pending):
            candidate = self.deadline(pending, admitted)
            if candidate > loosest + 1e-12:
                loosest = candidate
                loosest_index = index
        if loosest_index is None:
            return False
        del self._pending[loosest_index]
        self._pending_epoch += 1
        self.statistics.evicted += 1
        if not self._pending:
            self._window_opened = None
        return True

    # ------------------------------------------------------------------
    def submit(self, request: Request, now: Optional[float] = None) -> bool:
        """Admit ``request`` into the current window.

        Returns ``True`` when the request was admitted (it will be answered
        by a later flush), ``False`` when a full queue shed it under the
        "shed" policy.  A full queue under "shed" first tries to evict a
        strictly looser-deadline pending admission (see
        :meth:`_evict_loosest`); only when the incoming request would be the
        loosest itself is it refused.  Under the "block" policy a full
        queue flushes the pending window inline first, so admission always
        succeeds.  A window that reaches ``max_batch_size`` flushes
        immediately.
        """
        moment = self._now(now)
        if (
            self._queue_capacity is not None
            and len(self._pending) >= self._queue_capacity
        ):
            if self._queue_policy == "shed":
                if not self._evict_loosest(request, moment):
                    self.statistics.shed += 1
                    return False
            else:
                self._flush(moment, "forced")  # block: run the consumer inline
        if not self._pending:
            self._window_opened = moment
        self._pending.append((request, moment))
        self.statistics.admitted += 1
        if len(self._pending) > self.statistics.peak_queue_depth:
            self.statistics.peak_queue_depth = len(self._pending)
        if len(self._pending) >= self._max_batch_size:
            self._flush(moment, "size_closed")
        return True

    def pump(self, now: Optional[float] = None) -> List[DispatchOutcome]:
        """Flush the window if ``batch_window`` elapsed -- or a deadline nears.

        Drive this from the serving loop (every tick under replay, a timer
        live).  With a ``latency_budget``, the window also closes as soon as
        the oldest pending deadline is within the budget of the clock
        (counted separately as ``deadline_closed``), so a slow-filling
        window cannot sit on a nearly-due admission.  Returns the outcomes
        the flush answered (empty when the window is still filling or
        nothing is pending).
        """
        moment = self._now(now)
        if self._pending and self._window_opened is not None:
            if moment - self._window_opened >= self.current_window - 1e-12:
                return self._flush(moment, "window_closed")
            if self._latency_budget is not None:
                oldest = min(
                    self.deadline(request, admitted)
                    for request, admitted in self._pending
                )
                if moment >= oldest - self._latency_budget - 1e-12:
                    return self._flush(moment, "deadline_closed")
        return []

    def flush(self, now: Optional[float] = None) -> List[DispatchOutcome]:
        """Force-flush the pending window (drain before shutdown / rebuild)."""
        moment = self._now(now)
        if not self._pending:
            return []
        return self._flush(moment, "forced")

    def drain(self, now: Optional[float] = None) -> List[DispatchOutcome]:
        """Exception-safe full drain: flush until nothing is pending.

        A flush that raises consumes exactly one request (errored and
        counted) and re-queues the untouched remainder, so this loop
        terminates in at most ``pending`` iterations and never strands an
        admitted request -- the conservation invariant holds afterwards
        even when every single flush fails.  Shutdown paths use this so a
        poisoned window cannot abort the rest of ``close()``.
        """
        moment = self._now(now)
        outcomes: List[DispatchOutcome] = []
        budget = len(self._pending) + 1
        while self._pending and budget > 0:
            budget -= 1
            try:
                outcomes.extend(self._flush(moment, "forced"))
            except Exception:  # counted by _flush's error path; keep draining
                continue
        return outcomes

    def cancel(self, request_id: str) -> bool:
        """Remove an admitted-but-unflushed request from the pending window.

        Returns ``True`` when the request was pending (it is removed and
        counted in :attr:`IngestStatistics.cancelled`, so conservation
        holds), ``False`` when no pending request carries ``request_id``
        (already flushed, or never admitted).  An emptied window closes.
        """
        for index, (request, _admitted) in enumerate(self._pending):
            if request.request_id == request_id:
                del self._pending[index]
                self._pending_epoch += 1
                self.statistics.cancelled += 1
                if not self._pending:
                    self._window_opened = None
                return True
        return False

    # ------------------------------------------------------------------
    def _flush(self, moment: float, reason: str) -> List[DispatchOutcome]:
        window = self._pending
        opened = self._window_opened
        self._pending = []
        self._window_opened = None
        if not window:
            return []
        self._pending_epoch += 1  # covers the error-path re-queue too
        statistics = self.statistics
        setattr(statistics, reason, getattr(statistics, reason) + 1)
        statistics.window_fills.append(len(window) / self._max_batch_size)
        requests = [request for request, _ in window]
        admit_times = [admitted for _, admitted in window]
        deadlines = [self.deadline(request, admitted) for request, admitted in window]
        answered_before = statistics.answered
        started = self._wall_clock()

        def _answered(outcome: DispatchOutcome) -> None:
            position = statistics.answered - answered_before
            admit = admit_times[position]
            statistics.answered += 1
            if moment > deadlines[position] + 1e-12:
                statistics.deadline_misses += 1
            waited = moment - admit
            if waited < 0.0:
                waited = 0.0
            statistics.latencies.append(waited + (self._wall_clock() - started))
            if self._on_outcome is not None:
                self._on_outcome(outcome)

        try:
            _fire_fault("ingest.flush")  # chaos-harness hook (delay / error)
            outcomes = self._dispatcher.dispatch_batch(
                requests,
                policy=self._policy,
                shards=self._shards,
                workers=self._workers,
                prefetch_legs=self._prefetch_legs,
                on_outcome=_answered,
            )
        except Exception:
            # The dispatch raised at some request's turn: everything before
            # it was answered (and counted by the callback), the failing
            # request is lost to the error, and the untouched remainder is
            # re-queued at the front so no admitted request ever vanishes
            # silently (conservation:
            # admitted == answered + pending + errored + cancelled + evicted).
            answered = statistics.answered - answered_before
            statistics.errored += 1
            remainder = window[answered + 1 :]
            if remainder:
                self._pending = remainder + self._pending
                self._window_opened = remainder[0][1]
            statistics.serving_seconds += self._wall_clock() - started
            raise
        flush_wall = self._wall_clock() - started
        statistics.serving_seconds += flush_wall
        if self._controller is not None:
            span = 0.0 if opened is None else max(0.0, moment - opened)
            resized = self._controller.observe(flush_wall, len(window), span)
            if resized > 0:
                statistics.window_grown += 1
            elif resized < 0:
                statistics.window_shrunk += 1
        return outcomes


def batcher_from_config(
    dispatcher: Dispatcher,
    config,
    clock: Optional[Callable[[], float]] = None,
    on_outcome: Optional[Callable[[DispatchOutcome], None]] = None,
    wall_clock: Optional[Callable[[], float]] = None,
) -> MicroBatcher:
    """Build a :class:`MicroBatcher` from a :class:`~repro.core.config.SystemConfig`.

    Reads ``batch_window`` / ``max_batch_size`` / ``queue_capacity`` /
    ``queue_policy`` / ``speed`` / ``latency_budget`` /
    ``batch_window_mode`` / ``batch_window_min`` / ``batch_window_max``
    (plus the dispatch worker knob, which ``dispatch_batch`` already
    defaults from the same config), so the service layer and the admin
    form stay the single source of truth.
    """
    return MicroBatcher(
        dispatcher,
        batch_window=config.batch_window,
        max_batch_size=config.max_batch_size,
        queue_capacity=config.queue_capacity,
        queue_policy=config.queue_policy,
        speed=config.speed,
        latency_budget=config.latency_budget,
        window_mode=config.batch_window_mode,
        window_min=config.batch_window_min,
        window_max=config.batch_window_max,
        clock=clock,
        on_outcome=on_outcome,
        wall_clock=wall_clock,
    )
