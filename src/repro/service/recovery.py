"""Snapshot + replay crash recovery for the PTRider service.

The recovery model is the classic redo-log discipline database-backed
serving systems use:

1. at journal creation the service writes a **baseline snapshot** (sequence
   position 0) capturing its full logical state;
2. every state-mutating API call appends a command record *before*
   executing (:mod:`repro.service.journal`);
3. under ``durability="journal+snapshot"`` a fresh snapshot is written
   every ``snapshot_interval`` records (atomic tmp-then-rename, old files
   pruned), bounding the replay tail;
4. :meth:`~repro.service.api.PTRiderService.recover` rebuilds the service
   from the journal's metadata (road network, grid shape, config), restores
   the newest *valid* snapshot -- a corrupt or partial snapshot file falls
   back to the previous one, at the cost of a longer replay -- and
   re-executes the tail records in sequence order.

Replay is re-execution: the service's dispatch pipeline is deterministic
given fleet state, simulated time and the engine's RNG state (all captured
in the snapshot), so re-running the journaled commands reproduces bookings,
vehicle schedules, fleet positions and statistics counters exactly.  The
journal's window-flush ``outcome`` annotation records are used as a
cross-check: recovery compares every re-derived flush outcome against the
recorded one and raises :class:`RecoveryError` on divergence rather than
silently serving a different history.

Wall-clock measurements (matcher response seconds, flush wall time,
admission latencies) are *not* part of the logical state -- two runs of the
same events never agree on them -- so :func:`canonical_state` strips them;
equality of recovered and reference services is defined over everything
else: bookings, options, chosen schedules, vehicle kinetic trees, fleet
positions, motion/assignment bookkeeping, RNG state and the deterministic
statistics counters.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.pricing import LinearPriceModel
from repro.errors import PTRiderError, ServiceError
from repro.model.options import RideOption
from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.service.journal import JournalRecord, ServiceJournal
from repro.vehicles.fleet import restore_vehicle, snapshot_vehicle
from repro.vehicles.schedule import RequestState
from repro.vehicles.vehicle import Vehicle

__all__ = [
    "RecoveryError",
    "serialize_state",
    "restore_state",
    "canonical_state",
    "write_snapshot",
    "write_delta",
    "fold_delta",
    "load_snapshot_state",
    "replay_records",
    "serialize_config",
    "deserialize_config",
    "serialize_request",
    "deserialize_request",
    "SNAPSHOT_KEEP",
]

#: Snapshots retained after pruning (>= 2 so a corrupt newest file still
#: leaves a fallback).
SNAPSHOT_KEEP = 3

#: Bump when the snapshot payload shape changes incompatibly.
STATE_VERSION = 1


class RecoveryError(ServiceError):
    """Recovery could not restore a consistent service state."""


# ----------------------------------------------------------------------
# model codecs (JSON-able payloads for the frozen dataclasses)
# ----------------------------------------------------------------------
def serialize_request(request: Request) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.model.request.Request`."""
    return {
        "start": request.start,
        "destination": request.destination,
        "riders": request.riders,
        "max_waiting": request.max_waiting,
        "service_constraint": request.service_constraint,
        "request_id": request.request_id,
        "submit_time": request.submit_time,
    }


def deserialize_request(payload: Dict[str, object]) -> Request:
    """Rebuild a request (id preserved, so replay re-creates the same one)."""
    return Request(
        start=int(payload["start"]),
        destination=int(payload["destination"]),
        riders=int(payload["riders"]),
        max_waiting=float(payload["max_waiting"]),
        service_constraint=float(payload["service_constraint"]),
        request_id=str(payload["request_id"]),
        submit_time=float(payload["submit_time"]),
    )


def _serialize_stop(stop: Stop) -> List[object]:
    return [stop.vertex, stop.request_id, stop.kind.value, stop.riders]


def _deserialize_stop(payload: List[object]) -> Stop:
    return Stop(
        vertex=int(payload[0]),
        request_id=str(payload[1]),
        kind=StopKind(payload[2]),
        riders=int(payload[3]),
    )


def _serialize_schedule(schedule: Tuple[Stop, ...]) -> List[List[object]]:
    return [_serialize_stop(stop) for stop in schedule]


def _deserialize_schedule(payload: List[List[object]]) -> Tuple[Stop, ...]:
    return tuple(_deserialize_stop(stop) for stop in payload)


def serialize_option(option: RideOption) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.model.options.RideOption`."""
    return {
        "vehicle_id": option.vehicle_id,
        "pickup_distance": option.pickup_distance,
        "price": option.price,
        "request_id": option.request_id,
        "schedule": _serialize_schedule(option.schedule),
        "added_distance": option.added_distance,
    }


def deserialize_option(payload: Dict[str, object]) -> RideOption:
    """Rebuild a ride option (schedule stops included)."""
    return RideOption(
        vehicle_id=str(payload["vehicle_id"]),
        pickup_distance=float(payload["pickup_distance"]),
        price=float(payload["price"]),
        request_id=str(payload["request_id"]),
        schedule=_deserialize_schedule(payload["schedule"]),
        added_distance=float(payload["added_distance"]),
    )


def _serialize_request_state(state: RequestState) -> Dict[str, object]:
    return {
        "request": serialize_request(state.request),
        "onboard": state.onboard,
        "direct_distance": state.direct_distance,
        "planned_pickup_remaining": state.planned_pickup_remaining,
        "travelled_since_pickup": state.travelled_since_pickup,
    }


def _deserialize_request_state(payload: Dict[str, object]) -> RequestState:
    return RequestState(
        request=deserialize_request(payload["request"]),
        onboard=bool(payload["onboard"]),
        direct_distance=float(payload["direct_distance"]),
        planned_pickup_remaining=float(payload["planned_pickup_remaining"]),
        travelled_since_pickup=float(payload["travelled_since_pickup"]),
    )


def serialize_vehicle(vehicle: Vehicle) -> Dict[str, object]:
    """JSON payload of one vehicle, built on PR 6's :func:`snapshot_vehicle`."""
    (
        vehicle_id,
        location,
        capacity,
        offset,
        waiting,
        onboard,
        order,
        schedules,
        distance_driven,
        occupied_distance,
    ) = snapshot_vehicle(vehicle)
    return {
        "vehicle_id": vehicle_id,
        "location": location,
        "capacity": capacity,
        "offset": offset,
        "waiting": {rid: _serialize_request_state(s) for rid, s in waiting.items()},
        "onboard": {rid: _serialize_request_state(s) for rid, s in onboard.items()},
        "order": list(order),
        "schedules": [_serialize_schedule(schedule) for schedule in schedules],
        "distance_driven": distance_driven,
        "occupied_distance": occupied_distance,
    }


def deserialize_vehicle(payload: Dict[str, object]) -> Vehicle:
    """Rebuild a vehicle through :func:`~repro.vehicles.fleet.restore_vehicle`."""
    return restore_vehicle(
        (
            str(payload["vehicle_id"]),
            int(payload["location"]),
            int(payload["capacity"]),
            float(payload["offset"]),
            {
                rid: _deserialize_request_state(state)
                for rid, state in payload["waiting"].items()
            },
            {
                rid: _deserialize_request_state(state)
                for rid, state in payload["onboard"].items()
            },
            [str(rid) for rid in payload["order"]],
            [_deserialize_schedule(schedule) for schedule in payload["schedules"]],
            float(payload["distance_driven"]),
            float(payload["occupied_distance"]),
        )
    )


def serialize_config(config: SystemConfig) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.core.config.SystemConfig`."""
    price = config.price_model
    return {
        "vehicle_capacity": config.vehicle_capacity,
        "max_waiting": config.max_waiting,
        "service_constraint": config.service_constraint,
        "speed": config.speed,
        "max_pickup_distance": config.max_pickup_distance,
        "matcher_name": config.matcher_name,
        "price_model": {
            "base_ratio": getattr(price, "base_ratio", 0.3),
            "rider_increment": getattr(price, "rider_increment", 0.1),
            "booking_fee": getattr(price, "booking_fee", 0.0),
        },
        "routing_backend": config.routing_backend,
        "table_max_vertices": config.table_max_vertices,
        "tree_provider": config.tree_provider,
        "routing_cache_dir": config.routing_cache_dir,
        "match_shards": config.match_shards,
        "dispatch_workers": config.dispatch_workers,
        "batch_window": config.batch_window,
        "max_batch_size": config.max_batch_size,
        "queue_capacity": config.queue_capacity,
        "queue_policy": config.queue_policy,
        "durability": config.durability,
        "journal_path": config.journal_path,
        "snapshot_interval": config.snapshot_interval,
        "worker_timeout": config.worker_timeout,
        "max_dispatch_retries": config.max_dispatch_retries,
        "latency_budget": config.latency_budget,
        "batch_window_mode": config.batch_window_mode,
        "batch_window_min": config.batch_window_min,
        "batch_window_max": config.batch_window_max,
        "snapshot_mode": config.snapshot_mode,
        "retention_horizon": config.retention_horizon,
    }


def deserialize_config(payload: Dict[str, object]) -> SystemConfig:
    """Rebuild a config (price-model coefficients included)."""
    price = payload.get("price_model") or {}
    fields = dict(payload)
    fields["price_model"] = LinearPriceModel(
        base_ratio=float(price.get("base_ratio", 0.3)),
        rider_increment=float(price.get("rider_increment", 0.1)),
        booking_fee=float(price.get("booking_fee", 0.0)),
    )
    return SystemConfig(**fields)


# ----------------------------------------------------------------------
# full service state
# ----------------------------------------------------------------------
#: append-only measurement lists in the two statistics partitions; they
#: grow with served history, so incremental deltas carry only the tail
#: written since the previous snapshot point
_SIM_LIST_KEYS = (
    "response_times",
    "option_counts",
    "waiting_distances",
    "detour_ratios",
)
_INGEST_LIST_KEYS = ("window_fills", "latencies")


def _serialize_record(record) -> Dict[str, object]:
    """JSON payload of one per-request lifecycle record."""
    return {
        "submit_time": record.submit_time,
        "planned_pickup_distance": record.planned_pickup_distance,
        "pickup_time": record.pickup_time,
        "dropoff_time": record.dropoff_time,
        "shared": record.shared,
        "direct_distance": record.direct_distance,
        "travelled_distance": record.travelled_distance,
    }


def _serialize_sim_statistics(stats) -> Dict[str, object]:
    return {
        "response_times": list(stats.response_times),
        "option_counts": list(stats.option_counts),
        "matched_requests": stats.matched_requests,
        "unmatched_requests": stats.unmatched_requests,
        "completed_requests": stats.completed_requests,
        "shared_requests": stats.shared_requests,
        "pickups": stats.pickups,
        "dropoffs": stats.dropoffs,
        "waiting_distances": list(stats.waiting_distances),
        "detour_ratios": list(stats.detour_ratios),
        "records": {
            rid: _serialize_record(record)
            for rid, record in stats._records.items()
        },
    }


def _serialize_sim_statistics_delta(stats, marker: Dict[str, int]) -> Dict[str, object]:
    """The sim-statistics partition, incrementally: scalars wholesale,
    measurement lists as the suffix appended since the last snapshot point
    (``marker`` holds the lengths at that point), lifecycle records only
    where dirtied.  A dirty id with no live record serialises as ``null``
    (deleted), mirroring the bookings partition's retention convention."""
    return {
        "matched_requests": stats.matched_requests,
        "unmatched_requests": stats.unmatched_requests,
        "completed_requests": stats.completed_requests,
        "shared_requests": stats.shared_requests,
        "pickups": stats.pickups,
        "dropoffs": stats.dropoffs,
        "suffix": {
            key: list(getattr(stats, key)[marker.get(key, 0):])
            for key in _SIM_LIST_KEYS
        },
        "records": {
            rid: (
                None
                if stats._records.get(rid) is None
                else _serialize_record(stats._records[rid])
            )
            for rid in stats.dirty_records
        },
    }


def _restore_sim_statistics(stats, payload: Dict[str, object]) -> None:
    from repro.sim.stats import _RequestRecord

    stats.response_times = [float(v) for v in payload["response_times"]]
    stats.option_counts = [int(v) for v in payload["option_counts"]]
    stats.matched_requests = int(payload["matched_requests"])
    stats.unmatched_requests = int(payload["unmatched_requests"])
    stats.completed_requests = int(payload["completed_requests"])
    stats.shared_requests = int(payload["shared_requests"])
    stats.pickups = int(payload["pickups"])
    stats.dropoffs = int(payload["dropoffs"])
    stats.waiting_distances = [float(v) for v in payload["waiting_distances"]]
    stats.detour_ratios = [float(v) for v in payload["detour_ratios"]]
    stats._records = {
        rid: _RequestRecord(
            submit_time=float(record["submit_time"]),
            planned_pickup_distance=float(record["planned_pickup_distance"]),
            pickup_time=(
                None if record["pickup_time"] is None else float(record["pickup_time"])
            ),
            dropoff_time=(
                None
                if record["dropoff_time"] is None
                else float(record["dropoff_time"])
            ),
            shared=bool(record["shared"]),
            direct_distance=float(record["direct_distance"]),
            travelled_distance=float(record["travelled_distance"]),
        )
        for rid, record in payload["records"].items()
    }


def _serialize_ingest_statistics(stats) -> Dict[str, object]:
    return {
        "admitted": stats.admitted,
        "answered": stats.answered,
        "shed": stats.shed,
        "evicted": stats.evicted,
        "errored": stats.errored,
        "cancelled": stats.cancelled,
        "close_drained": stats.close_drained,
        "size_closed": stats.size_closed,
        "window_closed": stats.window_closed,
        "forced": stats.forced,
        "deadline_closed": stats.deadline_closed,
        "deadline_misses": stats.deadline_misses,
        "window_grown": stats.window_grown,
        "window_shrunk": stats.window_shrunk,
        "retired": stats.retired,
        "peak_queue_depth": stats.peak_queue_depth,
        "serving_seconds": stats.serving_seconds,
        "window_fills": list(stats.window_fills),
        "latencies": list(stats.latencies),
    }


def _serialize_ingest_statistics_delta(stats, marker: Dict[str, int]) -> Dict[str, object]:
    """The ingest-statistics partition, incrementally (see the sim twin)."""
    payload = _serialize_ingest_statistics(stats)
    for key in _INGEST_LIST_KEYS:
        payload.pop(key)
    payload["suffix"] = {
        key: list(getattr(stats, key)[marker.get(key, 0):])
        for key in _INGEST_LIST_KEYS
    }
    return payload


def _restore_ingest_statistics(stats, payload: Dict[str, object]) -> None:
    stats.admitted = int(payload["admitted"])
    stats.answered = int(payload["answered"])
    stats.shed = int(payload["shed"])
    stats.evicted = int(payload.get("evicted", 0))
    stats.errored = int(payload["errored"])
    stats.cancelled = int(payload.get("cancelled", 0))
    stats.close_drained = int(payload.get("close_drained", 0))
    stats.size_closed = int(payload["size_closed"])
    stats.window_closed = int(payload["window_closed"])
    stats.forced = int(payload["forced"])
    stats.deadline_closed = int(payload.get("deadline_closed", 0))
    stats.deadline_misses = int(payload.get("deadline_misses", 0))
    stats.window_grown = int(payload.get("window_grown", 0))
    stats.window_shrunk = int(payload.get("window_shrunk", 0))
    stats.retired = int(payload.get("retired", 0))
    stats.peak_queue_depth = int(payload["peak_queue_depth"])
    stats.serving_seconds = float(payload["serving_seconds"])
    stats.window_fills = [float(v) for v in payload["window_fills"]]
    stats.latencies = [float(v) for v in payload["latencies"]]


def _serialize_booking(booking) -> Dict[str, object]:
    """JSON payload of one booking (the unit of the bookings partition)."""
    chosen_index = -1
    if booking.chosen is not None:
        chosen_index = booking.options.index(booking.chosen)
    return {
        "booking_id": booking.booking_id,
        "request": serialize_request(booking.request),
        "options": [serialize_option(option) for option in booking.options],
        "chosen_index": chosen_index,
        "response_seconds": booking.response_seconds,
    }


def _serialize_meta_small(
    service, pending_marker: Optional[Tuple[int, int]] = None
) -> Dict[str, object]:
    """The genuinely small meta keys: everything except bookings, vehicles
    and the two statistics partitions.

    Simulated time, RNG state, the engine's motion/target/assignment
    bookkeeping (bounded by the fleet and its active rides), the
    micro-batcher's pending window, the adaptive-window controller state
    and the config.  Cheap and interdependent, so every incremental delta
    carries it wholesale -- except the pending window, which can be the
    single largest partition during a surge (hundreds of queued requests
    per cadence interval).  When ``pending_marker`` is given as
    ``(epoch, length)`` from the previous snapshot point and the batcher's
    :attr:`~repro.service.ingest.MicroBatcher.pending_epoch` still matches
    (no flush / eviction / cancel happened since -- appends only), the
    payload becomes ``{"suffix": [...]}`` carrying just the newly admitted
    entries; :func:`fold_delta` extends the folded queue.  Any epoch
    mismatch falls back to the wholesale list.
    """
    engine = service._engine
    batcher = service._batcher
    rng_state = engine._rng.getstate()
    entries = batcher.pending_entries()
    pending_payload: object
    if (
        pending_marker is not None
        and pending_marker[0] == batcher.pending_epoch
        and pending_marker[1] <= len(entries)
    ):
        pending_payload = {
            "suffix": [
                [serialize_request(request), admitted]
                for request, admitted in entries[pending_marker[1]:]
            ]
        }
    else:
        pending_payload = [
            [serialize_request(request), admitted]
            for request, admitted in entries
        ]
    return {
        "version": STATE_VERSION,
        "time": engine._time,
        "ticks": engine._ticks,
        "rng_state": [rng_state[0], list(rng_state[1]), rng_state[2]],
        "booking_next": service._peek_booking_counter(),
        "ingest_answered": [b.booking_id for b in service._ingest_answered],
        "motions": {
            vid: [motion.location, list(motion.route), motion.offset]
            for vid, motion in sorted(engine._motions.items())
        },
        "targets": {vid: target for vid, target in sorted(engine._targets.items())},
        "assignments": {
            rid: [
                record.vehicle_id,
                record.planned_pickup_distance,
                record.driven_at_assignment,
            ]
            for rid, record in sorted(engine._assignments.items())
        },
        "active_requests": dict(sorted(service._dispatcher._active_requests.items())),
        "pending": pending_payload,
        "window_opened": batcher.window_opened,
        "controller": batcher.controller_state(),
        "config": serialize_config(service._config),
    }


def _serialize_meta(service) -> Dict[str, object]:
    """Every state key *except* the bookings and vehicles partitions."""
    state = _serialize_meta_small(service)
    state["sim_stats"] = _serialize_sim_statistics(service._engine.statistics)
    state["ingest_stats"] = _serialize_ingest_statistics(
        service._batcher.statistics
    )
    return state


def serialize_state(service) -> Dict[str, object]:
    """Capture the full logical state of a service as a JSON-able dict.

    Everything recovery needs to resume: bookings (requests, option
    skylines, choices), the booking counter, every vehicle (via PR 6's
    snapshot tuples), the engine's motion/target/assignment bookkeeping,
    simulated time, the idle-wander RNG state, the statistics counters,
    the micro-batcher's pending window, counters and adaptive-window
    controller state, the dispatcher's active-request map and the current
    config.  JSON round-trips Python floats exactly (shortest-repr), so
    restored state compares equal.  The layout is partitioned -- bookings
    / vehicles / everything-else -- so incremental snapshot deltas
    (:func:`write_delta`) can re-serialise only what was touched.
    """
    state = _serialize_meta(service)
    state["bookings"] = [
        _serialize_booking(booking) for booking in service._bookings.values()
    ]
    state["vehicles"] = [
        serialize_vehicle(vehicle) for vehicle in service._fleet.vehicles()
    ]
    return state


def restore_state(service, state: Dict[str, object]) -> None:
    """Overwrite ``service``'s live state with a :func:`serialize_state` dict.

    The service must already run the snapshot's config (matcher, dispatch
    knobs, routing backend); :meth:`PTRiderService.recover` guarantees that
    by constructing it from the snapshot's own config payload.
    """
    from repro.model.options import RideOption  # local alias for clarity
    from repro.sim.engine import _AssignmentRecord
    from repro.vehicles.movement import MotionState

    engine = service._engine
    fleet = service._fleet
    batcher = service._batcher

    fleet.restore_vehicles(
        deserialize_vehicle(payload) for payload in state["vehicles"]
    )

    engine._time = float(state["time"])
    engine._ticks = int(state["ticks"])
    rng_version, rng_values, rng_extra = state["rng_state"]
    engine._rng.setstate((int(rng_version), tuple(rng_values), rng_extra))
    engine._motions = {
        vid: MotionState(
            location=int(payload[0]),
            route=tuple(int(v) for v in payload[1]),
            offset=float(payload[2]),
        )
        for vid, payload in state["motions"].items()
    }
    engine._targets = {
        vid: (None if target is None else int(target))
        for vid, target in state["targets"].items()
    }
    engine._assignments = {
        rid: _AssignmentRecord(
            vehicle_id=str(payload[0]),
            planned_pickup_distance=float(payload[1]),
            driven_at_assignment=float(payload[2]),
        )
        for rid, payload in state["assignments"].items()
    }
    _restore_sim_statistics(engine.statistics, state["sim_stats"])

    service._set_booking_counter(int(state["booking_next"]))
    service._bookings.clear()
    from repro.service.api import Booking

    for payload in state["bookings"]:
        options = tuple(deserialize_option(option) for option in payload["options"])
        chosen_index = int(payload["chosen_index"])
        booking = Booking(
            booking_id=str(payload["booking_id"]),
            request=deserialize_request(payload["request"]),
            options=options,
            chosen=options[chosen_index] if chosen_index >= 0 else None,
            response_seconds=float(payload["response_seconds"]),
        )
        service._bookings[booking.booking_id] = booking
    service._ingest_answered = [
        service._bookings[bid] for bid in state["ingest_answered"]
    ]

    service._dispatcher._active_requests = {
        rid: str(vid) for rid, vid in state["active_requests"].items()
    }
    _restore_ingest_statistics(batcher.statistics, state["ingest_stats"])
    batcher.restore_pending(
        [
            (deserialize_request(request), float(admitted))
            for request, admitted in state["pending"]
        ],
        state["window_opened"],
    )
    batcher.restore_controller(state.get("controller"))


#: Keys stripped from :func:`canonical_state`: wall-clock measurements that
#: two otherwise identical runs never agree on.
_WALL_CLOCK_STATE_KEYS = ("seq",)


def canonical_state(service) -> Dict[str, object]:
    """The service's logical state with wall-clock measurements stripped.

    Two services that processed the same events -- one live, one recovered
    from a journal -- compare equal under ``==`` of their canonical states;
    this is the property the fault-injection harness asserts.
    """
    state = serialize_state(service)
    for key in _WALL_CLOCK_STATE_KEYS:
        state.pop(key, None)
    for booking in state["bookings"]:
        booking.pop("response_seconds", None)
    state["sim_stats"].pop("response_times", None)
    for key in ("serving_seconds", "latencies", "window_grown", "window_shrunk"):
        state["ingest_stats"].pop(key, None)
    # The adaptive controller's EWMAs are driven by wall-clock flush walls;
    # replay pins the recorded per-command windows instead (the journal
    # payloads carry them), so controller internals are not canonical.
    state.pop("controller", None)
    return state


# ----------------------------------------------------------------------
# snapshot files
# ----------------------------------------------------------------------
def write_snapshot(journal: ServiceJournal, service, seq: int) -> Path:
    """Atomically write the service's state as the snapshot at ``seq``.

    The payload is written to a ``.tmp`` sibling first and moved into place
    with ``os.replace``, so a crash mid-snapshot leaves only an ignored
    temp file; a SHA-256 checksum over the state JSON lets recovery detect
    a corrupt or truncated snapshot and fall back to an older one.  Old
    snapshots beyond :data:`SNAPSHOT_KEEP` are pruned.
    """
    state = serialize_state(service)
    state_text = json.dumps(state, separators=(",", ":"))
    checksum = hashlib.sha256(state_text.encode("utf-8")).hexdigest()
    # Embed the already-encoded state verbatim instead of re-encoding it
    # inside the document: the loader's checksum verification re-dumps the
    # *parsed* state, so it already relies on JSON round-trip stability,
    # and one encode instead of two is a third off the serialisation bill.
    document_text = '{"seq":%d,"checksum":"%s","state":%s}' % (
        seq, checksum, state_text,
    )
    target = journal.snapshot_path(seq)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    tmp.write_text(document_text, encoding="utf-8")
    os.replace(tmp, target)
    journal.prune_snapshots(keep=SNAPSHOT_KEEP)
    return target


def write_delta(
    journal: ServiceJournal,
    service,
    seq: int,
    base_seq: int,
    prev_seq: int,
    dirty_bookings: Dict[str, None],
    dirty_vehicles,
    stats_marker: Dict[str, int],
) -> Path:
    """Atomically write an incremental snapshot delta at ``seq``.

    A delta re-serialises only what changed since the previous snapshot
    point: the small meta partition in full (counters, RNG, motions,
    pending window -- cheap and interdependent), the statistics
    partitions incrementally (scalar counters wholesale, measurement-list
    suffixes past ``stats_marker``, dirtied lifecycle records only), plus
    only the *dirty* bookings and vehicles.  ``dirty_bookings`` maps
    booking id -> ``None`` in creation (insertion) order so a fold
    preserves the bookings-list order of :func:`serialize_state`; ids no
    longer present in the live map serialise as ``null``
    (retention-pruned).  The delta chains on ``prev_seq`` (the previous
    snapshot point: the base full snapshot or the previous delta) under
    base full snapshot ``base_seq``; recovery folds the longest valid
    chain and journal-replays past any break.  Same atomic
    tmp-then-rename + checksum discipline as full snapshots.

    Everything here is O(changed-since-last-point), never O(history) --
    that is the whole point: the hot-path stall a cadence crossing causes
    stays a small constant fraction of a full serialisation however long
    the day has run.
    """
    bookings: Dict[str, object] = {}
    for booking_id in dirty_bookings:
        booking = service._bookings.get(booking_id)
        bookings[booking_id] = None if booking is None else _serialize_booking(booking)
    fleet = service._fleet
    vehicles: Dict[str, object] = {}
    for vehicle in fleet.vehicles():
        if vehicle.vehicle_id in dirty_vehicles:
            vehicles[vehicle.vehicle_id] = serialize_vehicle(vehicle)
    pending_marker = (
        stats_marker.get("pending_epoch", -1),
        stats_marker.get("pending_len", 0),
    )
    delta = {
        "version": STATE_VERSION,
        "meta": _serialize_meta_small(service, pending_marker=pending_marker),
        "sim_stats": _serialize_sim_statistics_delta(
            service._engine.statistics, stats_marker
        ),
        "ingest_stats": _serialize_ingest_statistics_delta(
            service._batcher.statistics, stats_marker
        ),
        "bookings": bookings,
        "vehicles": vehicles,
    }
    delta_text = json.dumps(delta, separators=(",", ":"))
    checksum = hashlib.sha256(delta_text.encode("utf-8")).hexdigest()
    # Compose the document around the already-encoded delta (see
    # write_snapshot): encoding the payload once instead of twice matters
    # most here, on the hot path.
    document_text = '{"seq":%d,"base":%d,"prev":%d,"checksum":"%s","delta":%s}' % (
        seq, base_seq, prev_seq, checksum, delta_text,
    )
    target = journal.delta_path(seq)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    tmp.write_text(document_text, encoding="utf-8")
    os.replace(tmp, target)
    return target


def _load_delta_file(
    path: Path,
) -> Optional[Tuple[int, int, int, Dict[str, object]]]:
    """Parse + checksum-verify one delta file; ``None`` when unusable."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        delta = document["delta"]
        delta_text = json.dumps(delta, separators=(",", ":"))
        checksum = hashlib.sha256(delta_text.encode("utf-8")).hexdigest()
        if checksum != document["checksum"]:
            return None
        if int(delta.get("version", -1)) != STATE_VERSION:
            return None
        return (
            int(document["seq"]),
            int(document["base"]),
            int(document["prev"]),
            delta,
        )
    except (OSError, ValueError, KeyError, TypeError):
        return None


def fold_delta(state: Dict[str, object], delta: Dict[str, object]) -> None:
    """Fold one delta into a full-snapshot ``state`` dict, in place.

    The small meta partition overwrites wholesale -- except the pending
    window, whose appends-only ``{"suffix": [...]}`` form extends the
    folded queue instead; the statistics
    partitions fold incrementally (scalars overwrite, measurement-list
    suffixes append, dirty lifecycle records replace/insert/delete by
    id); dirty vehicles replace their base entries by id (the fleet is
    fixed, so deltas never add or remove vehicles); dirty bookings
    replace-in-place, append (new bookings, in the delta's creation
    order) or delete (``null`` payload -- retention).  The fold preserves
    booking creation order, so a folded state is byte-identical to the
    :func:`serialize_state` the service would have produced at the same
    sequence position.
    """
    for key, value in delta["meta"].items():
        if key == "pending" and isinstance(value, dict):
            # Appends-only interval: the delta ships just the suffix of
            # newly admitted entries (see _serialize_meta_small).
            state[key] = list(state[key]) + list(value["suffix"])
        else:
            state[key] = value
    sim_delta = delta["sim_stats"]
    sim_state = state["sim_stats"]
    for key, value in sim_delta.items():
        if key in ("suffix", "records"):
            continue
        sim_state[key] = value
    for key, tail in sim_delta["suffix"].items():
        sim_state[key] = list(sim_state[key]) + list(tail)
    records = sim_state["records"]
    for rid, payload in sim_delta["records"].items():
        if payload is None:
            records.pop(rid, None)
        else:
            records[rid] = payload
    ingest_delta = delta["ingest_stats"]
    ingest_state = state["ingest_stats"]
    for key, value in ingest_delta.items():
        if key == "suffix":
            continue
        ingest_state[key] = value
    for key, tail in ingest_delta["suffix"].items():
        ingest_state[key] = list(ingest_state[key]) + list(tail)
    vehicles = delta["vehicles"]
    if vehicles:
        state["vehicles"] = [
            vehicles.get(payload["vehicle_id"], payload)
            for payload in state["vehicles"]
        ]
    bookings = delta["bookings"]
    if bookings:
        folded: List[object] = []
        seen = set()
        for payload in state["bookings"]:
            booking_id = payload["booking_id"]
            if booking_id in bookings:
                seen.add(booking_id)
                replacement = bookings[booking_id]
                if replacement is None:
                    continue  # retention-pruned
                folded.append(replacement)
            else:
                folded.append(payload)
        for booking_id, payload in bookings.items():
            if booking_id not in seen and payload is not None:
                folded.append(payload)
        state["bookings"] = folded


def _load_snapshot_file(path: Path) -> Optional[Tuple[int, Dict[str, object]]]:
    """Parse + checksum-verify one snapshot file; ``None`` when unusable."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        state = document["state"]
        state_text = json.dumps(state, separators=(",", ":"))
        checksum = hashlib.sha256(state_text.encode("utf-8")).hexdigest()
        if checksum != document["checksum"]:
            return None
        if int(state.get("version", -1)) != STATE_VERSION:
            return None
        return int(document["seq"]), state
    except (OSError, ValueError, KeyError, TypeError):
        return None


def load_snapshot_state(
    journal: ServiceJournal, prefer_snapshot: bool = True
) -> Tuple[int, Dict[str, object]]:
    """The newest valid snapshot's ``(seq, state)``.

    Walks the snapshot files newest-first, skipping corrupt or partial
    ones (bad checksum, truncated JSON, version mismatch) -- falling back
    to an older snapshot simply means a longer replay.  When incremental
    deltas exist on top of the chosen full snapshot, the longest valid
    chain (each delta checksummed, ``base`` == the full snapshot's seq,
    ``prev`` linking snapshot -> delta -> delta without gaps) is folded in
    order; a corrupt or torn delta truncates the chain there, and journal
    replay covers the rest.  With ``prefer_snapshot=False`` only the
    baseline (sequence position 0) is considered and deltas are ignored,
    forcing a full-journal replay -- the ablation arm of the recovery
    benchmark and the reference side of the snapshot+tail == full-replay
    property.

    Raises:
        RecoveryError: when no snapshot (not even the baseline) is usable.
    """
    candidates = journal.snapshot_files()
    if not prefer_snapshot:
        candidates = [(seq, path) for seq, path in candidates if seq == 0]
    for seq, path in reversed(candidates):
        loaded = _load_snapshot_file(path)
        if loaded is not None:
            if prefer_snapshot:
                return _fold_delta_chain(journal, loaded)
            return loaded
    raise RecoveryError(
        f"no usable snapshot in {journal.directory} "
        f"(checked {len(candidates)} file(s))"
    )


def _fold_delta_chain(
    journal: ServiceJournal, loaded: Tuple[int, Dict[str, object]]
) -> Tuple[int, Dict[str, object]]:
    """Fold the longest valid delta chain over a loaded full snapshot."""
    base_seq, state = loaded
    prev_seq = base_seq
    for delta_seq, delta_path in journal.delta_files():
        if delta_seq <= base_seq:
            continue
        parsed = _load_delta_file(delta_path)
        if parsed is None:
            break  # corrupt/torn delta: journal replay covers the rest
        seq, base, prev, delta = parsed
        if seq != delta_seq or base != base_seq or prev != prev_seq:
            break  # chain gap or stale delta from an older full snapshot
        fold_delta(state, delta)
        prev_seq = seq
    return prev_seq, state


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def apply_record(service, record: JournalRecord) -> None:
    """Re-execute one command record against ``service``.

    Skips records at or below the service's applied sequence position
    (idempotence: replaying the same tail twice is a no-op) and tolerates
    the service-level errors the original call raised live -- a command
    that failed deterministically fails identically on replay, leaving
    state untouched both times.
    """
    if record.seq <= service._applied_seq:
        return
    kind, payload = record.kind, record.payload
    # Adaptive-window commands journal the window that was in effect when
    # they executed live (wall-clock flush walls drive the controller, so a
    # replay would otherwise pick different window boundaries).  Pin it
    # before re-executing.
    if kind in ("admit", "pump", "drain"):
        window = payload.get("window")
        if window is not None:
            service._batcher.set_window(float(window))
    try:
        if kind == "book":
            service.book_request(deserialize_request(payload["request"]))
        elif kind == "book_batch":
            service._book_batch_requests(
                [deserialize_request(request) for request in payload["requests"]]
            )
        elif kind == "admit":
            service.ingest_request(
                deserialize_request(payload["request"]), now=float(payload["now"])
            )
        elif kind == "pump":
            service.pump(now=float(payload["now"]))
        elif kind == "drain":
            if payload.get("close"):
                service._close_drain(float(payload["now"]))
            else:
                service.drain(now=float(payload["now"]))
        elif kind == "choose":
            service.choose(str(payload["booking_id"]), int(payload["option_index"]))
        elif kind == "cancel":
            service.cancel(str(payload["id"]))
        elif kind == "advance":
            service.advance(float(payload["duration"]))
        elif kind == "set_parameters":
            service.set_parameters(**payload["changes"])
        else:  # pragma: no cover - append() rejects unknown kinds
            raise RecoveryError(f"unknown command record kind {kind!r}")
    except RecoveryError:
        raise
    except PTRiderError:
        # The live call raised the same deterministic service error after
        # its record was already durable; state is unchanged either way.
        pass
    service._applied_seq = record.seq


def replay_records(service, records: List[JournalRecord]) -> int:
    """Re-execute a record tail in sequence-number order; returns how many.

    Records are sorted by sequence number first, so arrival order never
    matters.  Window-flush ``outcome`` annotations are collected and
    compared against the outcomes the replay re-derives: the recovered
    history must be the recorded history.

    Raises:
        RecoveryError: when a re-derived flush outcome diverges from the
            journal's recorded outcome.
    """
    ordered = sorted(records, key=lambda record: record.seq)
    expected: List[Dict[str, object]] = []
    for record in ordered:
        if record.kind == "outcome" and record.seq > service._applied_seq:
            # one annotation record per command, holding every outcome the
            # command's flush produced, in flush order
            expected.extend(record.payload.get("outcomes", []))
    replayed: List[Dict[str, object]] = []
    previous_listener = service._dispatcher.outcome_listener

    def _observe(outcome) -> None:
        replayed.append(service._outcome_payload(outcome))

    service._dispatcher.outcome_listener = _observe
    applied = 0
    try:
        for record in ordered:
            if not record.is_command:
                if record.kind == "outcome" and record.seq > service._applied_seq:
                    service._applied_seq = record.seq
                continue
            before = service._applied_seq
            apply_record(service, record)
            if service._applied_seq > before:
                applied += 1
    finally:
        service._dispatcher.outcome_listener = previous_listener
    # Cross-check: every recorded flush outcome must match the re-derived
    # one at the same position.  The replay may legitimately produce *more*
    # outcomes than were recorded (a crash between a flush's commits and
    # its annotation appends), never different ones.
    for index, recorded in enumerate(expected):
        if index >= len(replayed):
            raise RecoveryError(
                f"journal records {len(expected)} flush outcomes but replay "
                f"re-derived only {len(replayed)}"
            )
        if recorded != replayed[index]:
            raise RecoveryError(
                "replay diverged from the journaled flush outcome for request "
                f"{recorded.get('request_id')!r}: recorded {recorded}, "
                f"re-derived {replayed[index]}"
            )
    return applied
