"""Snapshot + replay crash recovery for the PTRider service.

The recovery model is the classic redo-log discipline database-backed
serving systems use:

1. at journal creation the service writes a **baseline snapshot** (sequence
   position 0) capturing its full logical state;
2. every state-mutating API call appends a command record *before*
   executing (:mod:`repro.service.journal`);
3. under ``durability="journal+snapshot"`` a fresh snapshot is written
   every ``snapshot_interval`` records (atomic tmp-then-rename, old files
   pruned), bounding the replay tail;
4. :meth:`~repro.service.api.PTRiderService.recover` rebuilds the service
   from the journal's metadata (road network, grid shape, config), restores
   the newest *valid* snapshot -- a corrupt or partial snapshot file falls
   back to the previous one, at the cost of a longer replay -- and
   re-executes the tail records in sequence order.

Replay is re-execution: the service's dispatch pipeline is deterministic
given fleet state, simulated time and the engine's RNG state (all captured
in the snapshot), so re-running the journaled commands reproduces bookings,
vehicle schedules, fleet positions and statistics counters exactly.  The
journal's window-flush ``outcome`` annotation records are used as a
cross-check: recovery compares every re-derived flush outcome against the
recorded one and raises :class:`RecoveryError` on divergence rather than
silently serving a different history.

Wall-clock measurements (matcher response seconds, flush wall time,
admission latencies) are *not* part of the logical state -- two runs of the
same events never agree on them -- so :func:`canonical_state` strips them;
equality of recovered and reference services is defined over everything
else: bookings, options, chosen schedules, vehicle kinetic trees, fleet
positions, motion/assignment bookkeeping, RNG state and the deterministic
statistics counters.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.core.config import SystemConfig
from repro.core.pricing import LinearPriceModel
from repro.errors import PTRiderError, ServiceError
from repro.model.options import RideOption
from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.service.journal import JournalRecord, ServiceJournal
from repro.vehicles.fleet import restore_vehicle, snapshot_vehicle
from repro.vehicles.schedule import RequestState
from repro.vehicles.vehicle import Vehicle

__all__ = [
    "RecoveryError",
    "serialize_state",
    "restore_state",
    "canonical_state",
    "write_snapshot",
    "load_snapshot_state",
    "replay_records",
    "serialize_config",
    "deserialize_config",
    "serialize_request",
    "deserialize_request",
    "SNAPSHOT_KEEP",
]

#: Snapshots retained after pruning (>= 2 so a corrupt newest file still
#: leaves a fallback).
SNAPSHOT_KEEP = 3

#: Bump when the snapshot payload shape changes incompatibly.
STATE_VERSION = 1


class RecoveryError(ServiceError):
    """Recovery could not restore a consistent service state."""


# ----------------------------------------------------------------------
# model codecs (JSON-able payloads for the frozen dataclasses)
# ----------------------------------------------------------------------
def serialize_request(request: Request) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.model.request.Request`."""
    return {
        "start": request.start,
        "destination": request.destination,
        "riders": request.riders,
        "max_waiting": request.max_waiting,
        "service_constraint": request.service_constraint,
        "request_id": request.request_id,
        "submit_time": request.submit_time,
    }


def deserialize_request(payload: Dict[str, object]) -> Request:
    """Rebuild a request (id preserved, so replay re-creates the same one)."""
    return Request(
        start=int(payload["start"]),
        destination=int(payload["destination"]),
        riders=int(payload["riders"]),
        max_waiting=float(payload["max_waiting"]),
        service_constraint=float(payload["service_constraint"]),
        request_id=str(payload["request_id"]),
        submit_time=float(payload["submit_time"]),
    )


def _serialize_stop(stop: Stop) -> List[object]:
    return [stop.vertex, stop.request_id, stop.kind.value, stop.riders]


def _deserialize_stop(payload: List[object]) -> Stop:
    return Stop(
        vertex=int(payload[0]),
        request_id=str(payload[1]),
        kind=StopKind(payload[2]),
        riders=int(payload[3]),
    )


def _serialize_schedule(schedule: Tuple[Stop, ...]) -> List[List[object]]:
    return [_serialize_stop(stop) for stop in schedule]


def _deserialize_schedule(payload: List[List[object]]) -> Tuple[Stop, ...]:
    return tuple(_deserialize_stop(stop) for stop in payload)


def serialize_option(option: RideOption) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.model.options.RideOption`."""
    return {
        "vehicle_id": option.vehicle_id,
        "pickup_distance": option.pickup_distance,
        "price": option.price,
        "request_id": option.request_id,
        "schedule": _serialize_schedule(option.schedule),
        "added_distance": option.added_distance,
    }


def deserialize_option(payload: Dict[str, object]) -> RideOption:
    """Rebuild a ride option (schedule stops included)."""
    return RideOption(
        vehicle_id=str(payload["vehicle_id"]),
        pickup_distance=float(payload["pickup_distance"]),
        price=float(payload["price"]),
        request_id=str(payload["request_id"]),
        schedule=_deserialize_schedule(payload["schedule"]),
        added_distance=float(payload["added_distance"]),
    )


def _serialize_request_state(state: RequestState) -> Dict[str, object]:
    return {
        "request": serialize_request(state.request),
        "onboard": state.onboard,
        "direct_distance": state.direct_distance,
        "planned_pickup_remaining": state.planned_pickup_remaining,
        "travelled_since_pickup": state.travelled_since_pickup,
    }


def _deserialize_request_state(payload: Dict[str, object]) -> RequestState:
    return RequestState(
        request=deserialize_request(payload["request"]),
        onboard=bool(payload["onboard"]),
        direct_distance=float(payload["direct_distance"]),
        planned_pickup_remaining=float(payload["planned_pickup_remaining"]),
        travelled_since_pickup=float(payload["travelled_since_pickup"]),
    )


def serialize_vehicle(vehicle: Vehicle) -> Dict[str, object]:
    """JSON payload of one vehicle, built on PR 6's :func:`snapshot_vehicle`."""
    (
        vehicle_id,
        location,
        capacity,
        offset,
        waiting,
        onboard,
        order,
        schedules,
        distance_driven,
        occupied_distance,
    ) = snapshot_vehicle(vehicle)
    return {
        "vehicle_id": vehicle_id,
        "location": location,
        "capacity": capacity,
        "offset": offset,
        "waiting": {rid: _serialize_request_state(s) for rid, s in waiting.items()},
        "onboard": {rid: _serialize_request_state(s) for rid, s in onboard.items()},
        "order": list(order),
        "schedules": [_serialize_schedule(schedule) for schedule in schedules],
        "distance_driven": distance_driven,
        "occupied_distance": occupied_distance,
    }


def deserialize_vehicle(payload: Dict[str, object]) -> Vehicle:
    """Rebuild a vehicle through :func:`~repro.vehicles.fleet.restore_vehicle`."""
    return restore_vehicle(
        (
            str(payload["vehicle_id"]),
            int(payload["location"]),
            int(payload["capacity"]),
            float(payload["offset"]),
            {
                rid: _deserialize_request_state(state)
                for rid, state in payload["waiting"].items()
            },
            {
                rid: _deserialize_request_state(state)
                for rid, state in payload["onboard"].items()
            },
            [str(rid) for rid in payload["order"]],
            [_deserialize_schedule(schedule) for schedule in payload["schedules"]],
            float(payload["distance_driven"]),
            float(payload["occupied_distance"]),
        )
    )


def serialize_config(config: SystemConfig) -> Dict[str, object]:
    """JSON payload of a :class:`~repro.core.config.SystemConfig`."""
    price = config.price_model
    return {
        "vehicle_capacity": config.vehicle_capacity,
        "max_waiting": config.max_waiting,
        "service_constraint": config.service_constraint,
        "speed": config.speed,
        "max_pickup_distance": config.max_pickup_distance,
        "matcher_name": config.matcher_name,
        "price_model": {
            "base_ratio": getattr(price, "base_ratio", 0.3),
            "rider_increment": getattr(price, "rider_increment", 0.1),
            "booking_fee": getattr(price, "booking_fee", 0.0),
        },
        "routing_backend": config.routing_backend,
        "table_max_vertices": config.table_max_vertices,
        "tree_provider": config.tree_provider,
        "routing_cache_dir": config.routing_cache_dir,
        "match_shards": config.match_shards,
        "dispatch_workers": config.dispatch_workers,
        "batch_window": config.batch_window,
        "max_batch_size": config.max_batch_size,
        "queue_capacity": config.queue_capacity,
        "queue_policy": config.queue_policy,
        "durability": config.durability,
        "journal_path": config.journal_path,
        "snapshot_interval": config.snapshot_interval,
        "worker_timeout": config.worker_timeout,
        "max_dispatch_retries": config.max_dispatch_retries,
        "latency_budget": config.latency_budget,
    }


def deserialize_config(payload: Dict[str, object]) -> SystemConfig:
    """Rebuild a config (price-model coefficients included)."""
    price = payload.get("price_model") or {}
    fields = dict(payload)
    fields["price_model"] = LinearPriceModel(
        base_ratio=float(price.get("base_ratio", 0.3)),
        rider_increment=float(price.get("rider_increment", 0.1)),
        booking_fee=float(price.get("booking_fee", 0.0)),
    )
    return SystemConfig(**fields)


# ----------------------------------------------------------------------
# full service state
# ----------------------------------------------------------------------
def _serialize_sim_statistics(stats) -> Dict[str, object]:
    return {
        "response_times": list(stats.response_times),
        "option_counts": list(stats.option_counts),
        "matched_requests": stats.matched_requests,
        "unmatched_requests": stats.unmatched_requests,
        "completed_requests": stats.completed_requests,
        "shared_requests": stats.shared_requests,
        "pickups": stats.pickups,
        "dropoffs": stats.dropoffs,
        "waiting_distances": list(stats.waiting_distances),
        "detour_ratios": list(stats.detour_ratios),
        "records": {
            rid: {
                "submit_time": record.submit_time,
                "planned_pickup_distance": record.planned_pickup_distance,
                "pickup_time": record.pickup_time,
                "dropoff_time": record.dropoff_time,
                "shared": record.shared,
                "direct_distance": record.direct_distance,
                "travelled_distance": record.travelled_distance,
            }
            for rid, record in stats._records.items()
        },
    }


def _restore_sim_statistics(stats, payload: Dict[str, object]) -> None:
    from repro.sim.stats import _RequestRecord

    stats.response_times = [float(v) for v in payload["response_times"]]
    stats.option_counts = [int(v) for v in payload["option_counts"]]
    stats.matched_requests = int(payload["matched_requests"])
    stats.unmatched_requests = int(payload["unmatched_requests"])
    stats.completed_requests = int(payload["completed_requests"])
    stats.shared_requests = int(payload["shared_requests"])
    stats.pickups = int(payload["pickups"])
    stats.dropoffs = int(payload["dropoffs"])
    stats.waiting_distances = [float(v) for v in payload["waiting_distances"]]
    stats.detour_ratios = [float(v) for v in payload["detour_ratios"]]
    stats._records = {
        rid: _RequestRecord(
            submit_time=float(record["submit_time"]),
            planned_pickup_distance=float(record["planned_pickup_distance"]),
            pickup_time=(
                None if record["pickup_time"] is None else float(record["pickup_time"])
            ),
            dropoff_time=(
                None
                if record["dropoff_time"] is None
                else float(record["dropoff_time"])
            ),
            shared=bool(record["shared"]),
            direct_distance=float(record["direct_distance"]),
            travelled_distance=float(record["travelled_distance"]),
        )
        for rid, record in payload["records"].items()
    }


def _serialize_ingest_statistics(stats) -> Dict[str, object]:
    return {
        "admitted": stats.admitted,
        "answered": stats.answered,
        "shed": stats.shed,
        "evicted": stats.evicted,
        "errored": stats.errored,
        "cancelled": stats.cancelled,
        "close_drained": stats.close_drained,
        "size_closed": stats.size_closed,
        "window_closed": stats.window_closed,
        "forced": stats.forced,
        "deadline_closed": stats.deadline_closed,
        "deadline_misses": stats.deadline_misses,
        "peak_queue_depth": stats.peak_queue_depth,
        "serving_seconds": stats.serving_seconds,
        "window_fills": list(stats.window_fills),
        "latencies": list(stats.latencies),
    }


def _restore_ingest_statistics(stats, payload: Dict[str, object]) -> None:
    stats.admitted = int(payload["admitted"])
    stats.answered = int(payload["answered"])
    stats.shed = int(payload["shed"])
    stats.evicted = int(payload.get("evicted", 0))
    stats.errored = int(payload["errored"])
    stats.cancelled = int(payload.get("cancelled", 0))
    stats.close_drained = int(payload.get("close_drained", 0))
    stats.size_closed = int(payload["size_closed"])
    stats.window_closed = int(payload["window_closed"])
    stats.forced = int(payload["forced"])
    stats.deadline_closed = int(payload.get("deadline_closed", 0))
    stats.deadline_misses = int(payload.get("deadline_misses", 0))
    stats.peak_queue_depth = int(payload["peak_queue_depth"])
    stats.serving_seconds = float(payload["serving_seconds"])
    stats.window_fills = [float(v) for v in payload["window_fills"]]
    stats.latencies = [float(v) for v in payload["latencies"]]


def serialize_state(service) -> Dict[str, object]:
    """Capture the full logical state of a service as a JSON-able dict.

    Everything recovery needs to resume: bookings (requests, option
    skylines, choices), the booking counter, every vehicle (via PR 6's
    snapshot tuples), the engine's motion/target/assignment bookkeeping,
    simulated time, the idle-wander RNG state, the statistics counters,
    the micro-batcher's pending window and counters, the dispatcher's
    active-request map and the current config.  JSON round-trips Python
    floats exactly (shortest-repr), so restored state compares equal.
    """
    engine = service._engine
    batcher = service._batcher
    rng_state = engine._rng.getstate()
    bookings = []
    for booking in service._bookings.values():
        chosen_index = -1
        if booking.chosen is not None:
            chosen_index = booking.options.index(booking.chosen)
        bookings.append(
            {
                "booking_id": booking.booking_id,
                "request": serialize_request(booking.request),
                "options": [serialize_option(option) for option in booking.options],
                "chosen_index": chosen_index,
                "response_seconds": booking.response_seconds,
            }
        )
    return {
        "version": STATE_VERSION,
        "time": engine._time,
        "ticks": engine._ticks,
        "rng_state": [rng_state[0], list(rng_state[1]), rng_state[2]],
        "booking_next": service._peek_booking_counter(),
        "bookings": bookings,
        "ingest_answered": [b.booking_id for b in service._ingest_answered],
        "vehicles": [
            serialize_vehicle(vehicle) for vehicle in service._fleet.vehicles()
        ],
        "motions": {
            vid: [motion.location, list(motion.route), motion.offset]
            for vid, motion in sorted(engine._motions.items())
        },
        "targets": {vid: target for vid, target in sorted(engine._targets.items())},
        "assignments": {
            rid: [
                record.vehicle_id,
                record.planned_pickup_distance,
                record.driven_at_assignment,
            ]
            for rid, record in sorted(engine._assignments.items())
        },
        "active_requests": dict(sorted(service._dispatcher._active_requests.items())),
        "sim_stats": _serialize_sim_statistics(engine.statistics),
        "ingest_stats": _serialize_ingest_statistics(batcher.statistics),
        "pending": [
            [serialize_request(request), admitted]
            for request, admitted in batcher.pending_entries()
        ],
        "window_opened": batcher.window_opened,
        "config": serialize_config(service._config),
    }


def restore_state(service, state: Dict[str, object]) -> None:
    """Overwrite ``service``'s live state with a :func:`serialize_state` dict.

    The service must already run the snapshot's config (matcher, dispatch
    knobs, routing backend); :meth:`PTRiderService.recover` guarantees that
    by constructing it from the snapshot's own config payload.
    """
    from repro.model.options import RideOption  # local alias for clarity
    from repro.sim.engine import _AssignmentRecord
    from repro.vehicles.movement import MotionState

    engine = service._engine
    fleet = service._fleet
    batcher = service._batcher

    fleet.restore_vehicles(
        deserialize_vehicle(payload) for payload in state["vehicles"]
    )

    engine._time = float(state["time"])
    engine._ticks = int(state["ticks"])
    rng_version, rng_values, rng_extra = state["rng_state"]
    engine._rng.setstate((int(rng_version), tuple(rng_values), rng_extra))
    engine._motions = {
        vid: MotionState(
            location=int(payload[0]),
            route=tuple(int(v) for v in payload[1]),
            offset=float(payload[2]),
        )
        for vid, payload in state["motions"].items()
    }
    engine._targets = {
        vid: (None if target is None else int(target))
        for vid, target in state["targets"].items()
    }
    engine._assignments = {
        rid: _AssignmentRecord(
            vehicle_id=str(payload[0]),
            planned_pickup_distance=float(payload[1]),
            driven_at_assignment=float(payload[2]),
        )
        for rid, payload in state["assignments"].items()
    }
    _restore_sim_statistics(engine.statistics, state["sim_stats"])

    service._set_booking_counter(int(state["booking_next"]))
    service._bookings.clear()
    from repro.service.api import Booking

    for payload in state["bookings"]:
        options = tuple(deserialize_option(option) for option in payload["options"])
        chosen_index = int(payload["chosen_index"])
        booking = Booking(
            booking_id=str(payload["booking_id"]),
            request=deserialize_request(payload["request"]),
            options=options,
            chosen=options[chosen_index] if chosen_index >= 0 else None,
            response_seconds=float(payload["response_seconds"]),
        )
        service._bookings[booking.booking_id] = booking
    service._ingest_answered = [
        service._bookings[bid] for bid in state["ingest_answered"]
    ]

    service._dispatcher._active_requests = {
        rid: str(vid) for rid, vid in state["active_requests"].items()
    }
    _restore_ingest_statistics(batcher.statistics, state["ingest_stats"])
    batcher.restore_pending(
        [
            (deserialize_request(request), float(admitted))
            for request, admitted in state["pending"]
        ],
        state["window_opened"],
    )


#: Keys stripped from :func:`canonical_state`: wall-clock measurements that
#: two otherwise identical runs never agree on.
_WALL_CLOCK_STATE_KEYS = ("seq",)


def canonical_state(service) -> Dict[str, object]:
    """The service's logical state with wall-clock measurements stripped.

    Two services that processed the same events -- one live, one recovered
    from a journal -- compare equal under ``==`` of their canonical states;
    this is the property the fault-injection harness asserts.
    """
    state = serialize_state(service)
    for key in _WALL_CLOCK_STATE_KEYS:
        state.pop(key, None)
    for booking in state["bookings"]:
        booking.pop("response_seconds", None)
    state["sim_stats"].pop("response_times", None)
    for key in ("serving_seconds", "latencies"):
        state["ingest_stats"].pop(key, None)
    return state


# ----------------------------------------------------------------------
# snapshot files
# ----------------------------------------------------------------------
def write_snapshot(journal: ServiceJournal, service, seq: int) -> Path:
    """Atomically write the service's state as the snapshot at ``seq``.

    The payload is written to a ``.tmp`` sibling first and moved into place
    with ``os.replace``, so a crash mid-snapshot leaves only an ignored
    temp file; a SHA-256 checksum over the state JSON lets recovery detect
    a corrupt or truncated snapshot and fall back to an older one.  Old
    snapshots beyond :data:`SNAPSHOT_KEEP` are pruned.
    """
    state = serialize_state(service)
    state_text = json.dumps(state, separators=(",", ":"))
    document = {
        "seq": seq,
        "checksum": hashlib.sha256(state_text.encode("utf-8")).hexdigest(),
        "state": state,
    }
    target = journal.snapshot_path(seq)
    tmp = target.with_name(f"{target.name}.{os.getpid()}.tmp")
    tmp.write_text(json.dumps(document, separators=(",", ":")), encoding="utf-8")
    os.replace(tmp, target)
    journal.prune_snapshots(keep=SNAPSHOT_KEEP)
    return target


def _load_snapshot_file(path: Path) -> Optional[Tuple[int, Dict[str, object]]]:
    """Parse + checksum-verify one snapshot file; ``None`` when unusable."""
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
        state = document["state"]
        state_text = json.dumps(state, separators=(",", ":"))
        checksum = hashlib.sha256(state_text.encode("utf-8")).hexdigest()
        if checksum != document["checksum"]:
            return None
        if int(state.get("version", -1)) != STATE_VERSION:
            return None
        return int(document["seq"]), state
    except (OSError, ValueError, KeyError, TypeError):
        return None


def load_snapshot_state(
    journal: ServiceJournal, prefer_snapshot: bool = True
) -> Tuple[int, Dict[str, object]]:
    """The newest valid snapshot's ``(seq, state)``.

    Walks the snapshot files newest-first, skipping corrupt or partial
    ones (bad checksum, truncated JSON, version mismatch) -- falling back
    to an older snapshot simply means a longer replay.  With
    ``prefer_snapshot=False`` only the baseline (sequence position 0) is
    considered, forcing a full-journal replay -- the ablation arm of the
    recovery benchmark and the reference side of the snapshot+tail ==
    full-replay property.

    Raises:
        RecoveryError: when no snapshot (not even the baseline) is usable.
    """
    candidates = journal.snapshot_files()
    if not prefer_snapshot:
        candidates = [(seq, path) for seq, path in candidates if seq == 0]
    for seq, path in reversed(candidates):
        loaded = _load_snapshot_file(path)
        if loaded is not None:
            return loaded
    raise RecoveryError(
        f"no usable snapshot in {journal.directory} "
        f"(checked {len(candidates)} file(s))"
    )


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------
def apply_record(service, record: JournalRecord) -> None:
    """Re-execute one command record against ``service``.

    Skips records at or below the service's applied sequence position
    (idempotence: replaying the same tail twice is a no-op) and tolerates
    the service-level errors the original call raised live -- a command
    that failed deterministically fails identically on replay, leaving
    state untouched both times.
    """
    if record.seq <= service._applied_seq:
        return
    kind, payload = record.kind, record.payload
    try:
        if kind == "book":
            service.book_request(deserialize_request(payload["request"]))
        elif kind == "book_batch":
            service._book_batch_requests(
                [deserialize_request(request) for request in payload["requests"]]
            )
        elif kind == "admit":
            service.ingest_request(
                deserialize_request(payload["request"]), now=float(payload["now"])
            )
        elif kind == "pump":
            service.pump(now=float(payload["now"]))
        elif kind == "drain":
            if payload.get("close"):
                service._close_drain(float(payload["now"]))
            else:
                service.drain(now=float(payload["now"]))
        elif kind == "choose":
            service.choose(str(payload["booking_id"]), int(payload["option_index"]))
        elif kind == "cancel":
            service.cancel(str(payload["id"]))
        elif kind == "advance":
            service.advance(float(payload["duration"]))
        elif kind == "set_parameters":
            service.set_parameters(**payload["changes"])
        else:  # pragma: no cover - append() rejects unknown kinds
            raise RecoveryError(f"unknown command record kind {kind!r}")
    except RecoveryError:
        raise
    except PTRiderError:
        # The live call raised the same deterministic service error after
        # its record was already durable; state is unchanged either way.
        pass
    service._applied_seq = record.seq


def replay_records(service, records: List[JournalRecord]) -> int:
    """Re-execute a record tail in sequence-number order; returns how many.

    Records are sorted by sequence number first, so arrival order never
    matters.  Window-flush ``outcome`` annotations are collected and
    compared against the outcomes the replay re-derives: the recovered
    history must be the recorded history.

    Raises:
        RecoveryError: when a re-derived flush outcome diverges from the
            journal's recorded outcome.
    """
    ordered = sorted(records, key=lambda record: record.seq)
    expected: List[Dict[str, object]] = []
    for record in ordered:
        if record.kind == "outcome" and record.seq > service._applied_seq:
            # one annotation record per command, holding every outcome the
            # command's flush produced, in flush order
            expected.extend(record.payload.get("outcomes", []))
    replayed: List[Dict[str, object]] = []
    previous_listener = service._dispatcher.outcome_listener

    def _observe(outcome) -> None:
        replayed.append(service._outcome_payload(outcome))

    service._dispatcher.outcome_listener = _observe
    applied = 0
    try:
        for record in ordered:
            if not record.is_command:
                if record.kind == "outcome" and record.seq > service._applied_seq:
                    service._applied_seq = record.seq
                continue
            before = service._applied_seq
            apply_record(service, record)
            if service._applied_seq > before:
                applied += 1
    finally:
        service._dispatcher.outcome_listener = previous_listener
    # Cross-check: every recorded flush outcome must match the re-derived
    # one at the same position.  The replay may legitimately produce *more*
    # outcomes than were recorded (a crash between a flush's commits and
    # its annotation appends), never different ones.
    for index, recorded in enumerate(expected):
        if index >= len(replayed):
            raise RecoveryError(
                f"journal records {len(expected)} flush outcomes but replay "
                f"re-derived only {len(replayed)}"
            )
        if recorded != replayed[index]:
            raise RecoveryError(
                "replay diverged from the journaled flush outcome for request "
                f"{recorded.get('request_id')!r}: recorded {recorded}, "
                f"re-derived {replayed[index]}"
            )
    return applied
