"""Exception hierarchy shared by every PTRider subsystem.

All library errors derive from :class:`PTRiderError` so applications can
catch a single base class.  More specific classes exist for the situations a
caller is expected to handle programmatically (bad input, infeasible
schedules, missing vertices, ...).
"""

from __future__ import annotations


class PTRiderError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class RoadNetworkError(PTRiderError):
    """Base class for road-network related errors."""


class VertexNotFoundError(RoadNetworkError, KeyError):
    """A vertex identifier does not exist in the road network."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"vertex {vertex!r} is not part of the road network")
        self.vertex = vertex


class EdgeNotFoundError(RoadNetworkError, KeyError):
    """An edge does not exist in the road network."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not part of the road network")
        self.u = u
        self.v = v


class DisconnectedError(RoadNetworkError):
    """No path exists between two vertices."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"no path connects {source!r} and {target!r}")
        self.source = source
        self.target = target


class InvalidNetworkError(RoadNetworkError, ValueError):
    """The road network violates a structural requirement."""


class GridIndexError(PTRiderError):
    """Base class for grid-index errors."""


class VehicleError(PTRiderError):
    """Base class for vehicle / fleet errors."""


class CapacityExceededError(VehicleError, ValueError):
    """A schedule would carry more riders than the vehicle capacity."""


class InvalidScheduleError(VehicleError, ValueError):
    """A trip schedule violates one of the validity conditions."""


class UnknownVehicleError(VehicleError, KeyError):
    """A vehicle identifier is not registered with the fleet."""

    def __init__(self, vehicle_id: object) -> None:
        super().__init__(f"vehicle {vehicle_id!r} is not registered")
        self.vehicle_id = vehicle_id


class RequestError(PTRiderError, ValueError):
    """A ridesharing request is malformed."""


class MatchingError(PTRiderError):
    """Base class for matcher errors."""


class NoMatchError(MatchingError):
    """No vehicle can feasibly serve a request."""

    def __init__(self, request: object) -> None:
        super().__init__(f"no vehicle can serve request {request!r}")
        self.request = request


class SimulationError(PTRiderError):
    """Base class for simulation-engine errors."""


class ServiceError(PTRiderError):
    """Base class for the in-memory PTRider service layer."""


class UnknownOptionError(ServiceError, KeyError):
    """A rider chose an option that the service never offered."""


class ConfigurationError(PTRiderError, ValueError):
    """A configuration value is out of its valid range."""
