"""Command-line interface.

Three subcommands cover the everyday uses of the reproduction:

``ptrider demo``
    Build a small system, book a trip, print the price/time options and show
    the chosen vehicle's schedules -- the smartphone flow of Section 4.1 in
    text form.

``ptrider simulate``
    Run a day-fraction simulation on a synthetic Shanghai-like workload and
    print the website statistics panel (Section 4.2).

``ptrider compare``
    Answer the same burst of requests with the naive, single-side and
    dual-side matchers and print how much verification work each needed
    (a quick view of experiment E3).
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from typing import List, Optional, Sequence

from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.generators import grid_network
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import ROUTING_BACKENDS, TREE_PROVIDERS, make_engine
from repro.service.api import PTRiderService, build_system
from repro.service.journal import ServiceJournal
from repro.sim.engine import SimulationEngine
from repro.sim.trips import ShanghaiLikeTripGenerator
from repro.sim.workload import RequestWorkload, random_requests
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Return the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="ptrider",
        description="PTRider: price-and-time-aware ridesharing (reproduction of Chen et al., PVLDB 2018)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="book one trip and show the options")
    demo.add_argument("--vehicles", type=int, default=25, help="fleet size")
    demo.add_argument("--rows", type=int, default=12, help="road-network rows")
    demo.add_argument("--columns", type=int, default=12, help="road-network columns")
    demo.add_argument("--riders", type=int, default=2, help="riders in the group")
    demo.add_argument("--seed", type=int, default=7, help="random seed")
    demo.add_argument(
        "--routing", choices=ROUTING_BACKENDS, default="csr",
        help="routing backend (default: csr -- bit-identical to dict and "
        "5-7x faster; pick dict for the pure-Python reference path)",
    )
    demo.add_argument(
        "--routing-cache", default=None, metavar="DIR",
        help="directory for persisted compiled routing artifacts "
        "(restarts skip preprocessing)",
    )
    demo.add_argument(
        "--tree-provider", choices=TREE_PROVIDERS, default="auto",
        help="how the ch backend computes full distance trees (auto picks "
        "the fastest correct path; plane/phast force the CSR plane or the "
        "hierarchy-native PHAST sweep for ablation)",
    )
    demo.add_argument(
        "--durability", choices=SystemConfig._VALID_DURABILITY, default="off",
        help="persist live service state: journal records every mutating "
        "event to a SQLite write-ahead journal, journal+snapshot adds "
        "periodic state snapshots that bound recovery replay length",
    )
    demo.add_argument(
        "--journal", default=None, metavar="DIR", dest="journal_path",
        help="journal directory (required when --durability is not off); "
        "recover a crashed service from it with PTRiderService.recover()",
    )
    demo.add_argument(
        "--snapshot-interval", type=int, default=0, metavar="N",
        help="journal records between automatic snapshots under "
        "journal+snapshot (0 keeps the config default)",
    )
    demo.add_argument(
        "--snapshot-mode", choices=SystemConfig._VALID_SNAPSHOT_MODES,
        default="full",
        help="snapshot cadence: full rewrites the whole state each time, "
        "incremental writes cheap dirty-partition deltas and compacts to a "
        "full snapshot in the background, between serving windows",
    )
    demo.add_argument(
        "--retention-horizon", type=float, default=0.0, metavar="T",
        help="prune fully-served bookings older than T time units from "
        "live state and snapshots; the journal keeps the full history "
        "(0 disables retention)",
    )
    demo.add_argument(
        "--resume", action="store_true",
        help="warm-restart from --journal's directory when it already holds "
        "state (PTRiderService.recover restores the newest snapshot and "
        "replays the tail); a fresh directory builds a new durable service",
    )

    simulate = subparsers.add_parser("simulate", help="run a workload simulation")
    simulate.add_argument("--vehicles", type=int, default=40, help="fleet size")
    simulate.add_argument("--rows", type=int, default=15, help="road-network rows")
    simulate.add_argument("--columns", type=int, default=15, help="road-network columns")
    simulate.add_argument("--trips", type=int, default=200, help="number of trips in the workload")
    simulate.add_argument("--duration", type=float, default=600.0, help="simulated duration (time units)")
    simulate.add_argument(
        "--matcher", choices=("single_side", "dual_side", "naive"), default="single_side"
    )
    simulate.add_argument("--seed", type=int, default=7, help="random seed")
    simulate.add_argument(
        "--routing", choices=ROUTING_BACKENDS, default="csr",
        help="routing backend (default: csr -- bit-identical to dict and "
        "5-7x faster; pick dict for the pure-Python reference path)",
    )
    simulate.add_argument(
        "--routing-cache", default=None, metavar="DIR",
        help="directory for persisted compiled routing artifacts "
        "(restarts skip preprocessing)",
    )
    simulate.add_argument(
        "--tree-provider", choices=TREE_PROVIDERS, default="auto",
        help="how the ch backend computes full distance trees (auto picks "
        "the fastest correct path; plane/phast force the CSR plane or the "
        "hierarchy-native PHAST sweep for ablation)",
    )
    simulate.add_argument(
        "--shards", type=int, default=1,
        help="fleet shards the batch dispatch pipeline partitions vehicles into",
    )
    simulate.add_argument(
        "--workers", type=int, default=1,
        help="worker processes the batch dispatch pipeline fans the per-shard "
        "collect/verify stage out to (shared-memory pool; 1 keeps everything "
        "in-process, results are byte-identical either way)",
    )
    simulate.add_argument(
        "--batch-window", type=float, default=1.0,
        help="seconds the serving micro-batcher lets a window accumulate "
        "before flushing it through the batch pipeline",
    )
    simulate.add_argument(
        "--max-batch-size", type=int, default=512,
        help="request count that force-closes a micro-batch window early",
    )
    simulate.add_argument(
        "--queue-capacity", type=int, default=0,
        help="bound on admitted-but-unanswered requests the micro-batcher "
        "may hold (0 = unbounded)",
    )
    simulate.add_argument(
        "--queue-policy", choices=("shed", "block"), default="shed",
        help="what a full ingest queue does with the next admission: shed "
        "refuses it, block flushes the pending window inline to free capacity",
    )
    simulate.add_argument(
        "--worker-timeout", type=float, default=30.0,
        help="seconds a dispatch worker may stay silent before the watchdog "
        "declares it hung, kills it and re-dispatches its shard in-process",
    )
    simulate.add_argument(
        "--max-dispatch-retries", type=int, default=1,
        help="retry attempts for a failed batch hand-off against a freshly "
        "spawned worker pool (0 disables retry)",
    )
    simulate.add_argument(
        "--latency-budget", type=float, default=0.0,
        help="force-close the ingest window when the oldest admission is "
        "within this many time units of its deadline (0 disables)",
    )
    simulate.add_argument(
        "--batch-window-mode", choices=SystemConfig._VALID_WINDOW_MODES,
        default="fixed",
        help="fixed keeps --batch-window as-is; adaptive lets a closed-loop "
        "controller resize the window from observed flush walls and arrival "
        "rates (bounded by --batch-window-min/max)",
    )
    simulate.add_argument(
        "--batch-window-min", type=float, default=0.0,
        help="adaptive controller's lower window bound "
        "(0 derives batch_window/16)",
    )
    simulate.add_argument(
        "--batch-window-max", type=float, default=0.0,
        help="adaptive controller's upper window bound "
        "(0 derives batch_window*16)",
    )

    compare = subparsers.add_parser("compare", help="compare matcher work on one request burst")
    compare.add_argument("--vehicles", type=int, default=60, help="fleet size")
    compare.add_argument("--rows", type=int, default=15, help="road-network rows")
    compare.add_argument("--columns", type=int, default=15, help="road-network columns")
    compare.add_argument("--requests", type=int, default=30, help="requests in the burst")
    compare.add_argument("--seed", type=int, default=7, help="random seed")
    compare.add_argument(
        "--routing", choices=ROUTING_BACKENDS, default="csr",
        help="routing backend (default: csr -- bit-identical to dict and "
        "5-7x faster; pick dict for the pure-Python reference path)",
    )
    compare.add_argument(
        "--routing-cache", default=None, metavar="DIR",
        help="directory for persisted compiled routing artifacts "
        "(restarts skip preprocessing)",
    )
    compare.add_argument(
        "--tree-provider", choices=TREE_PROVIDERS, default="auto",
        help="how the ch backend computes full distance trees (auto picks "
        "the fastest correct path; plane/phast force the CSR plane or the "
        "hierarchy-native PHAST sweep for ablation)",
    )
    compare.add_argument(
        "--shards", type=int, default=1,
        help="fleet shards the batch dispatch pipeline partitions vehicles into",
    )
    compare.add_argument(
        "--workers", type=int, default=1,
        help="worker processes the batch dispatch pipeline fans the per-shard "
        "collect/verify stage out to (shared-memory pool; 1 keeps everything "
        "in-process, results are byte-identical either way)",
    )
    compare.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=True,
        help="dispatch the burst through the batched pipeline (--no-batch for the sequential loop)",
    )
    compare.add_argument(
        "--prefetch", action=argparse.BooleanOptionalAction, default=True,
        help="prefetch the batch's start trees in one vectorised engine call "
        "(--no-prefetch computes trees per start; only meaningful with --batch)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``ptrider`` console script."""
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _run_demo(args)
    if args.command == "simulate":
        return _run_simulate(args)
    return _run_compare(args)


# ----------------------------------------------------------------------
def _run_demo(args: argparse.Namespace) -> int:
    system = None
    if args.resume:
        if not args.journal_path:
            print("--resume requires --journal DIR", file=sys.stderr)
            return 2
        probe = ServiceJournal(args.journal_path)
        fresh = probe.is_fresh()
        probe.close()
        if not fresh:
            # Warm restart: the journal already holds state, so rebuild the
            # service from it (newest snapshot + tail replay) instead of
            # refusing the directory as build_system would.
            system = PTRiderService.recover(args.journal_path)
            print(
                f"Resumed from journal {args.journal_path} "
                f"(t={system.current_time:.1f}, {len(system.vehicle_ids())} vehicles)"
            )
    if system is None:
        durability = args.durability if args.durability != "off" else None
        if args.resume and durability is None:
            # --resume on a fresh directory still means "be durable": the
            # whole point is that the *next* run can warm-restart from it.
            durability = "journal"
        system = build_system(
            network_rows=args.rows,
            network_columns=args.columns,
            vehicles=args.vehicles,
            seed=args.seed,
            routing=args.routing,
            routing_cache=args.routing_cache,
            tree_provider=args.tree_provider,
            durability=durability,
            journal_path=args.journal_path,
            snapshot_interval=args.snapshot_interval or None,
            snapshot_mode=args.snapshot_mode,
            retention_horizon=args.retention_horizon or None,
        )
    try:
        rng = random.Random(args.seed)
        vertices = system.fleet.grid.network.vertices()
        start, destination = rng.sample(vertices, 2)
        booking = system.book(start, destination, riders=args.riders)
        print(f"Request: {booking.request.describe()}")
        if not booking.options:
            print("No vehicle can serve this request right now.")
            return 1
        print(f"{len(booking.options)} non-dominated option(s):")
        for index, option in enumerate(booking.options):
            print(
                f"  [{index}] vehicle {option.vehicle_id}: pick-up distance {option.pickup_distance:.2f}, "
                f"price {option.price:.2f}"
            )
        chosen = system.choose(booking.booking_id, 0)
        print(f"Chose option 0 (vehicle {chosen.vehicle_id}).")
        print("Vehicle schedules (kinetic-tree branches):")
        for schedule in system.vehicle_schedules(chosen.vehicle_id):
            print("  " + " -> ".join(f"{kind}:{request}@{vertex}" for vertex, kind, request in schedule))
        stats = system.routing_statistics()
        print(
            f"Serving window: {stats['ingest_window']:.3f} "
            f"({stats['ingest_window_mode']}; "
            f"grown {stats['ingest_window_grown']:.0f}, "
            f"shrunk {stats['ingest_window_shrunk']:.0f})"
        )
        if system.journal is not None:
            print(
                f"Snapshots: {stats['snapshot_full_count']:.0f} full "
                f"({stats['snapshot_full_bytes']:.0f} B last), "
                f"{stats['snapshot_delta_count']:.0f} delta "
                f"({stats['snapshot_delta_bytes']:.0f} B last), "
                f"background full-serialise {stats['snapshot_full_seconds']:.3f}s"
            )
        return 0
    finally:
        if system.journal is not None:
            # Snapshot at the exit position so the next --resume restores
            # without replaying this session's records.
            system.snapshot()
        system.close()


def _run_simulate(args: argparse.Namespace) -> int:
    network = grid_network(args.rows, args.columns, weight_jitter=0.25, seed=args.seed)
    grid = GridIndex(network, rows=8, columns=8)
    fleet = Fleet(
        grid,
        make_engine(
            network, args.routing, cache_dir=args.routing_cache,
            tree_provider=args.tree_provider,
        ),
    )
    rng = random.Random(args.seed)
    vertices = network.vertices()
    for index in range(args.vehicles):
        fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(vertices), capacity=4))
    config = SystemConfig(
        max_waiting=6.0, service_constraint=0.4, max_pickup_distance=12.0,
        routing_backend=args.routing, routing_cache_dir=args.routing_cache,
        tree_provider=args.tree_provider, match_shards=args.shards,
        dispatch_workers=args.workers,
        batch_window=args.batch_window, max_batch_size=args.max_batch_size,
        queue_capacity=args.queue_capacity or None,
        queue_policy=args.queue_policy,
        worker_timeout=args.worker_timeout,
        max_dispatch_retries=args.max_dispatch_retries,
        latency_budget=args.latency_budget or None,
        batch_window_mode=args.batch_window_mode,
        batch_window_min=args.batch_window_min or None,
        batch_window_max=args.batch_window_max or None,
    )
    matcher = {
        "single_side": SingleSideSearchMatcher,
        "dual_side": DualSideSearchMatcher,
        "naive": NaiveKineticTreeMatcher,
    }[args.matcher](fleet, config=config)
    dispatcher = Dispatcher(fleet, matcher, config)
    generator = ShanghaiLikeTripGenerator(network, seed=args.seed)
    trips = generator.generate(args.trips, day_seconds=args.duration)
    workload = RequestWorkload.from_trips(trips, config.max_waiting, config.service_constraint)
    engine = SimulationEngine(dispatcher, workload, speed=1.0, tick=1.0, seed=args.seed)
    try:
        report = engine.run(until=args.duration + 50.0)
    finally:
        dispatcher.close()
    print(
        f"Matcher: {matcher.name} (routing={args.routing}, shards={args.shards}, "
        f"workers={args.workers})"
    )
    for key, value in sorted(report.panel().items()):
        print(f"  {key:>25}: {value:.4f}")
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    results = []
    for matcher_class in (NaiveKineticTreeMatcher, SingleSideSearchMatcher, DualSideSearchMatcher):
        network = grid_network(args.rows, args.columns, weight_jitter=0.25, seed=args.seed)
        grid = GridIndex(network, rows=8, columns=8)
        fleet = Fleet(
            grid,
            make_engine(
                network, args.routing, cache_dir=args.routing_cache,
                tree_provider=args.tree_provider,
            ),
        )
        rng = random.Random(args.seed)
        vertices = network.vertices()
        for index in range(args.vehicles):
            fleet.add_vehicle(Vehicle(f"c{index + 1}", location=rng.choice(vertices), capacity=4))
        config = SystemConfig(
            max_waiting=6.0, service_constraint=0.4, max_pickup_distance=12.0,
            routing_backend=args.routing, routing_cache_dir=args.routing_cache,
            tree_provider=args.tree_provider, match_shards=args.shards,
            dispatch_workers=args.workers,
        )
        matcher = matcher_class(fleet, config=config)
        dispatcher = Dispatcher(fleet, matcher, config)
        requests = random_requests(
            network,
            args.requests,
            config.max_waiting,
            config.service_constraint,
            seed=args.seed,
        )
        started = time.perf_counter()
        try:
            if args.batch:
                dispatcher.dispatch_batch(
                    requests, policy=OptionPolicy.CHEAPEST, prefetch=args.prefetch
                )
            else:
                dispatcher.dispatch_sequential(requests, policy=OptionPolicy.CHEAPEST)
        finally:
            dispatcher.close()
        elapsed = time.perf_counter() - started
        stats = matcher.statistics.as_dict()
        batch_stats = dispatcher.last_batch_statistics
        hit_rate = batch_stats.shared_tree_hit_rate if batch_stats is not None else 0.0
        prefetched = batch_stats.prefetched_trees if batch_stats is not None else 0
        results.append((matcher.name, elapsed, stats, hit_rate, prefetched))
    if args.batch:
        mode = (
            f"batched pipeline, {args.shards} shard(s), {args.workers} worker(s), "
            f"prefetch {'on' if args.prefetch else 'off'}"
        )
    else:
        mode = "sequential loop"
    print(f"Dispatch: {mode}")
    print(
        f"{'matcher':>12} {'seconds':>9} {'evaluated':>10} {'pruned':>8} "
        f"{'options':>8} {'tree hits':>9} {'prefetched':>10}"
    )
    for name, elapsed, stats, hit_rate, prefetched in results:
        print(
            f"{name:>12} {elapsed:>9.3f} {stats['vehicles_evaluated']:>10.0f} "
            f"{stats['vehicles_pruned']:>8.0f} {stats['options_returned']:>8.0f} "
            f"{hit_rate:>8.0%} {prefetched:>10d}"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - manual invocation
    sys.exit(main())
