"""PTRider: a price-and-time-aware ridesharing system (reproduction).

This package reproduces *PTRider: A Price-and-Time-Aware Ridesharing System*
(Chen, Gao, Liu, Xiao, Jensen, Zhu; PVLDB 11(12), 2018) as a pure-Python
library:

* :mod:`repro.roadnet` -- the road network, shortest paths, the pluggable
  routing engines (dict / CSR / CSR+ALT) and the grid index;
* :mod:`repro.model` -- requests, ride options, dominance and skylines;
* :mod:`repro.vehicles` -- vehicles, kinetic trees, the fleet index, motion;
* :mod:`repro.core` -- the price model, the naive / single-side / dual-side
  matchers and the dispatcher;
* :mod:`repro.sim` -- the taxi-fleet simulation, trip/workload generators and
  statistics;
* :mod:`repro.baselines` -- SHAREK-style, nearest-vehicle and T-Share-style
  comparison systems;
* :mod:`repro.service` -- the in-memory PTRider service mirroring the demo's
  smartphone and website interfaces.

Quickstart::

    from repro import build_system, Request

    system = build_system(network_rows=20, network_columns=20, vehicles=50, seed=7)
    options = system.submit(Request(start=5, destination=310, riders=2))
    for option in options:
        print(option)
"""

from repro.core.config import SystemConfig
from repro.core.context import MatchContext
from repro.core.dispatcher import Dispatcher, DispatchOutcome, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.matcher import Matcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.pricing import LinearPriceModel, rider_price_ratio
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.options import RideOption, Skyline, dominates, skyline_of
from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.roadnet.generators import figure1_network, grid_network, random_geometric_network
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import (
    ROUTING_BACKENDS,
    CSREngine,
    DictDijkstraEngine,
    RoutingEngine,
    make_engine,
)
from repro.roadnet.shortest_path import DistanceOracle
from repro.service.api import PTRiderService, build_system
from repro.vehicles.fleet import Fleet
from repro.vehicles.kinetic_tree import KineticTree
from repro.vehicles.vehicle import Vehicle

__version__ = "1.0.0"

__all__ = [
    "CSREngine",
    "DictDijkstraEngine",
    "Dispatcher",
    "DispatchOutcome",
    "DistanceOracle",
    "DualSideSearchMatcher",
    "Fleet",
    "GridIndex",
    "KineticTree",
    "LinearPriceModel",
    "MatchContext",
    "Matcher",
    "NaiveKineticTreeMatcher",
    "OptionPolicy",
    "PTRiderService",
    "ROUTING_BACKENDS",
    "Request",
    "RideOption",
    "RoadNetwork",
    "RoutingEngine",
    "SingleSideSearchMatcher",
    "Skyline",
    "Stop",
    "StopKind",
    "SystemConfig",
    "Vehicle",
    "build_system",
    "dominates",
    "figure1_network",
    "grid_network",
    "make_engine",
    "random_geometric_network",
    "rider_price_ratio",
    "skyline_of",
    "__version__",
]
