"""The ridesharing request of Definition 1.

A request ``R = <s, d, n, w, epsilon>`` consists of a start location, a
destination, the number of riders, the maximum waiting time ``w`` (the slack
allowed between the *planned* and the *actual* pick-up time) and the service
constraint ``epsilon`` (the relative detour allowed between start and
destination).

Because PTRider assumes a constant vehicle speed (Section 2.1), times and
distances are interchangeable; the library expresses ``w`` in the same
distance units as edge weights.  Helpers convert to wall-clock seconds when a
speed is supplied.
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RequestError

__all__ = ["Request"]

_request_counter = itertools.count(1)
#: Per-process salt so generated ids never collide with explicit ids such as
#: "R1" used by callers, workload generators or the paper's examples.
_PROCESS_SALT = uuid.uuid4().hex[:6]


def _next_request_id() -> str:
    return f"req-{_PROCESS_SALT}-{next(_request_counter)}"


@dataclass(frozen=True)
class Request:
    """A ridesharing request (Definition 1 of the paper).

    Attributes:
        start: start vertex ``s`` on the road network.
        destination: destination vertex ``d``.
        riders: number of riders ``n`` travelling together (>= 1).
        max_waiting: maximum waiting time ``w`` expressed in distance units
            (the slack allowed between planned and actual pick-up).
        service_constraint: detour tolerance ``epsilon``; the travelled
            distance from ``s`` to ``d`` may not exceed
            ``(1 + epsilon) * dist(s, d)``.
        request_id: unique identifier; generated when omitted.
        submit_time: simulation time at which the request entered the system.
    """

    start: int
    destination: int
    riders: int = 1
    max_waiting: float = 5.0
    service_constraint: float = 0.2
    request_id: str = field(default_factory=_next_request_id)
    submit_time: float = 0.0

    def __post_init__(self) -> None:
        if self.start == self.destination:
            raise RequestError(
                f"request {self.request_id}: start and destination must differ, got {self.start}"
            )
        if self.riders < 1:
            raise RequestError(f"request {self.request_id}: riders must be >= 1, got {self.riders}")
        if self.max_waiting < 0:
            raise RequestError(
                f"request {self.request_id}: max_waiting must be non-negative, got {self.max_waiting}"
            )
        if self.service_constraint < 0:
            raise RequestError(
                f"request {self.request_id}: service_constraint must be non-negative, "
                f"got {self.service_constraint}"
            )
        if self.submit_time < 0:
            raise RequestError(
                f"request {self.request_id}: submit_time must be non-negative, got {self.submit_time}"
            )

    def detour_budget(self, direct_distance: float) -> float:
        """Return the maximum distance allowed from ``s`` to ``d`` in a schedule.

        Args:
            direct_distance: the shortest-path distance ``dist(s, d)``.
        """
        if direct_distance < 0:
            raise RequestError(f"direct_distance must be non-negative, got {direct_distance}")
        return (1.0 + self.service_constraint) * direct_distance

    def with_submit_time(self, submit_time: float) -> "Request":
        """Return a copy of the request stamped with a new submission time."""
        return Request(
            start=self.start,
            destination=self.destination,
            riders=self.riders,
            max_waiting=self.max_waiting,
            service_constraint=self.service_constraint,
            request_id=self.request_id,
            submit_time=submit_time,
        )

    def waiting_seconds(self, speed: float) -> float:
        """Convert the waiting budget to seconds for a given ``speed`` (distance/second)."""
        if speed <= 0:
            raise RequestError(f"speed must be positive, got {speed}")
        return self.max_waiting / speed

    def describe(self) -> str:
        """Return a short human-readable description (used by the CLI / service)."""
        return (
            f"{self.request_id}: {self.riders} rider(s) from {self.start} to {self.destination} "
            f"(w={self.max_waiting}, eps={self.service_constraint})"
        )
