"""Ride options, dominance and skyline maintenance.

The output of a price-and-time-aware ridesharing query (Definition 4 of the
paper) is the set of all qualified, mutually non-dominated results
``<c, time, price>``.  Since a constant speed is assumed, pick-up *time* is
represented by the pick-up *distance* ``dist_pt`` from the vehicle's current
location to the request's start location, exactly as in the paper.

Dominance follows the paper (and the classic skyline operator [3]):

    ``r_i`` dominates ``r_j``  iff  (r_i.time <= r_j.time and r_i.price < r_j.price)
                                or  (r_i.time <  r_j.time and r_i.price <= r_j.price)

i.e. at least as good in both dimensions and strictly better in one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.model.stops import Stop

__all__ = ["RideOption", "dominates", "skyline_of", "Skyline"]

#: Tolerance used when comparing prices / distances that went through
#: floating-point arithmetic.  Two values closer than this are "equal".
COMPARISON_EPSILON = 1e-9


@dataclass(frozen=True)
class RideOption:
    """One result offered to a rider: a vehicle, a pick-up distance and a price.

    Attributes:
        vehicle_id: identifier of the offering vehicle ``c``.
        pickup_distance: ``dist_pt``, the travel distance from the vehicle's
            current location to the request start along the offered schedule
            (proportional to the pick-up time at constant speed).
        price: the price of the option under the paper's price model.
        request_id: the request the option answers.
        schedule: the full stop sequence the vehicle would follow if the rider
            accepts; kept so the dispatcher can commit the choice without
            re-planning.
        added_distance: the extra distance the vehicle drives compared to its
            schedule before the insertion (used by statistics and baselines).
    """

    vehicle_id: str
    pickup_distance: float
    price: float
    request_id: str = ""
    schedule: Tuple[Stop, ...] = ()
    added_distance: float = 0.0

    def __post_init__(self) -> None:
        if self.pickup_distance < 0:
            raise ValueError(f"pickup_distance must be non-negative, got {self.pickup_distance}")
        if self.price < 0:
            raise ValueError(f"price must be non-negative, got {self.price}")

    def pickup_time(self, speed: float) -> float:
        """Convert the pick-up distance to a time for a given ``speed``."""
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed}")
        return self.pickup_distance / speed

    def dominates(self, other: "RideOption") -> bool:
        """Return ``True`` when this option dominates ``other``."""
        return dominates(self, other)

    def key(self) -> Tuple[float, float]:
        """Return the ``(time, price)`` pair used for dominance comparisons."""
        return (self.pickup_distance, self.price)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.vehicle_id}, {self.pickup_distance:g}, {self.price:g}>"


def dominates(first: RideOption, second: RideOption, epsilon: float = 0.0) -> bool:
    """Return ``True`` when ``first`` dominates ``second`` (Definition 4).

    Comparisons are exact by default, which keeps dominance irreflexive,
    antisymmetric and transitive (the properties skyline maintenance relies
    on).  A positive ``epsilon`` makes the comparison tolerant: strictly
    better must then exceed the tolerance -- useful when comparing options
    coming from different floating-point code paths, but not used internally.
    """
    time_le = first.pickup_distance <= second.pickup_distance + epsilon
    time_lt = first.pickup_distance < second.pickup_distance - epsilon
    price_le = first.price <= second.price + epsilon
    price_lt = first.price < second.price - epsilon
    return (time_le and price_lt) or (time_lt and price_le)


def skyline_of(options: Iterable[RideOption]) -> List[RideOption]:
    """Return the non-dominated subset of ``options``.

    The result is sorted by ascending pick-up distance (ties broken by price
    then vehicle id) which is also the order the demo UI presents options in.
    Duplicate ``(time, price)`` points are collapsed to a single
    representative so a rider never sees two indistinguishable offers.
    """
    candidates = sorted(options, key=lambda o: (o.pickup_distance, o.price, o.vehicle_id))
    result: List[RideOption] = []
    for candidate in candidates:
        if any(dominates(kept, candidate) for kept in result):
            continue
        duplicate = any(
            kept.pickup_distance == candidate.pickup_distance and kept.price == candidate.price
            for kept in result
        )
        if duplicate:
            continue
        result.append(candidate)
    return result


class Skyline:
    """Incrementally maintained set of mutually non-dominated options.

    The matchers push candidate options as they verify vehicles; the skyline
    keeps only the non-dominated ones and can answer, for pruning, whether a
    hypothetical ``(time, price)`` lower-bound pair could still contribute.
    """

    def __init__(self, options: Optional[Iterable[RideOption]] = None) -> None:
        self._options: List[RideOption] = []
        if options:
            for option in options:
                self.add(option)

    def __len__(self) -> int:
        return len(self._options)

    def __iter__(self) -> Iterator[RideOption]:
        return iter(self.options())

    def __contains__(self, option: RideOption) -> bool:
        return option in self._options

    def options(self) -> List[RideOption]:
        """Return the current skyline sorted by ascending pick-up distance."""
        return sorted(self._options, key=lambda o: (o.pickup_distance, o.price, o.vehicle_id))

    def add(self, option: RideOption) -> bool:
        """Insert ``option``; return ``True`` when it enters the skyline.

        Dominated candidates are rejected; existing options dominated by the
        newcomer are evicted.  When the newcomer ties an existing member on
        both coordinates, the representative with the smaller ``vehicle_id``
        is kept -- making the surviving skyline independent of insertion
        order, which the sharded batch pipeline relies on when it merges
        per-shard skylines (see :meth:`merge`).
        """
        for index, existing in enumerate(self._options):
            if dominates(existing, option):
                return False
            if (
                existing.pickup_distance == option.pickup_distance
                and existing.price == option.price
            ):
                if option.vehicle_id < existing.vehicle_id:
                    self._options[index] = option
                    return True
                return False
        self._options = [existing for existing in self._options if not dominates(option, existing)]
        self._options.append(option)
        return True

    def extend(self, options: Iterable[RideOption]) -> int:
        """Add many options; return how many entered the skyline."""
        return sum(1 for option in options if self.add(option))

    @classmethod
    def merge(cls, skylines: Iterable[Iterable[RideOption]]) -> "Skyline":
        """Merge several (per-shard) skylines into one by dominance.

        The result only depends on the *set* of options across all inputs,
        never on how they were partitioned: options are folded in the global
        ``(pickup, price, vehicle_id)`` order and equal points collapse to the
        smallest ``vehicle_id``, so merging the per-shard skylines of a
        partitioned fleet reproduces exactly the skyline a single matcher
        would compute over the whole fleet.
        """
        merged = cls()
        pooled = sorted(
            (option for skyline in skylines for option in skyline),
            key=lambda o: (o.pickup_distance, o.price, o.vehicle_id),
        )
        for option in pooled:
            merged.add(option)
        return merged

    def would_be_dominated(self, pickup_lower_bound: float, price_lower_bound: float) -> bool:
        """Return ``True`` when *no* option at least as bad as the bounds can survive.

        Matchers call this with admissible lower bounds for a candidate
        vehicle: if a skyline member dominates the (optimistic) bound pair it
        also dominates every real option the vehicle could produce, so the
        vehicle can be pruned without verification.
        """
        probe = RideOption(
            vehicle_id="__probe__",
            pickup_distance=max(pickup_lower_bound, 0.0),
            price=max(price_lower_bound, 0.0),
        )
        return any(dominates(existing, probe) for existing in self._options)

    def best_price(self) -> Optional[float]:
        """Return the lowest price in the skyline, or ``None`` when empty."""
        if not self._options:
            return None
        return min(option.price for option in self._options)

    def best_pickup(self) -> Optional[float]:
        """Return the smallest pick-up distance in the skyline, or ``None`` when empty."""
        if not self._options:
            return None
        return min(option.pickup_distance for option in self._options)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Skyline({self.options()!r})"
