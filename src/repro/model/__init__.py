"""Domain model shared by every PTRider layer.

This subpackage holds the value objects the paper defines in Section 2
(requests, trip stops, ride options, dominance / skyline) and has **no**
dependency on the road network, the vehicles or the matchers, so every other
subpackage can import it freely.
"""

from repro.model.options import RideOption, Skyline, dominates, skyline_of
from repro.model.request import Request
from repro.model.stops import Stop, StopKind

__all__ = [
    "Request",
    "RideOption",
    "Skyline",
    "Stop",
    "StopKind",
    "dominates",
    "skyline_of",
]
