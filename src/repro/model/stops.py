"""Trip-schedule stops.

A vehicle trip schedule (Definition 2 of the paper) is a sequence of
locations; every location after the vehicle's current position is either the
start (pick-up) or the destination (drop-off) of an unfinished request.
:class:`Stop` captures one such location together with the request it belongs
to, so feasibility checks can track occupancy and per-request constraints.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["StopKind", "Stop"]


class StopKind(enum.Enum):
    """Whether a stop picks riders up or drops them off."""

    PICKUP = "pickup"
    DROPOFF = "dropoff"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Stop:
    """One stop of a vehicle trip schedule.

    Stops are immutable and sit on the hottest loops of the matcher (every
    candidate schedule is a tuple of stops, deduplicated by hash, and every
    feasibility walk branches on the stop kind), so the derived values --
    ``is_pickup`` / ``is_dropoff`` / ``occupancy_delta`` and the hash -- are
    computed once at construction instead of per access.

    Attributes:
        vertex: the road-network vertex of the stop.
        request_id: the request served at the stop.
        kind: pick-up or drop-off.
        riders: how many riders board (pick-up) or alight (drop-off).
    """

    vertex: int
    request_id: str
    kind: StopKind
    riders: int = 1

    #: ``True`` for pick-up stops (precomputed attribute, not a property).
    is_pickup: bool = field(init=False, repr=False, compare=False)
    #: ``True`` for drop-off stops.
    is_dropoff: bool = field(init=False, repr=False, compare=False)
    #: Signed change in vehicle occupancy caused by this stop.
    occupancy_delta: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.riders < 1:
            raise ValueError(f"stop for {self.request_id} must move at least one rider")
        is_pickup = self.kind is StopKind.PICKUP
        object.__setattr__(self, "is_pickup", is_pickup)
        object.__setattr__(self, "is_dropoff", not is_pickup)
        object.__setattr__(
            self, "occupancy_delta", self.riders if is_pickup else -self.riders
        )
        object.__setattr__(
            self, "_hash", hash((self.vertex, self.request_id, self.kind, self.riders))
        )

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self):
        # Pickle by construction arguments, not by state: the precomputed
        # hash bakes in this process's string-hash seed, so a stop shipped
        # to/from a dispatch worker must recompute it under the receiving
        # process's seed or set/dict membership silently breaks there.
        return (Stop, (self.vertex, self.request_id, self.kind, self.riders))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        sign = "+" if self.is_pickup else "-"
        return f"{self.kind.value}({self.request_id}@{self.vertex}{sign}{self.riders})"


def pickup(vertex: int, request_id: str, riders: int = 1) -> Stop:
    """Convenience constructor for a pick-up stop."""
    return Stop(vertex=vertex, request_id=request_id, kind=StopKind.PICKUP, riders=riders)


def dropoff(vertex: int, request_id: str, riders: int = 1) -> Stop:
    """Convenience constructor for a drop-off stop."""
    return Stop(vertex=vertex, request_id=request_id, kind=StopKind.DROPOFF, riders=riders)
