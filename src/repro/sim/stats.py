"""Simulation statistics.

The website interface of the demo (Section 4.2) shows "the current time, the
average response time, and the average sharing rate" and claims that PTRider
is *efficient* (low response time) and *effective* (high sharing rate).
:class:`SimulationStatistics` collects everything needed to reproduce that
panel and the evaluation sweeps:

* per-request matching latency (the response time);
* per-request option counts (how many non-dominated choices riders get);
* matched / unmatched counts;
* sharing: a served request counts as *shared* when, at any moment between
  its pick-up and drop-off, another request's riders were in the same
  vehicle; the **sharing rate** is the fraction of completed requests that
  were shared (the fleet-level occupancy statistics are reported too);
* waiting times (actual minus planned pick-up) and detour ratios.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["summarise", "SimulationStatistics"]


def summarise(values: List[float]) -> Dict[str, float]:
    """Return count / mean / median / p95 / min / max of a value list."""
    if not values:
        return {"count": 0.0, "mean": 0.0, "median": 0.0, "p95": 0.0, "min": 0.0, "max": 0.0}
    ordered = sorted(values)
    count = len(ordered)

    def percentile(fraction: float) -> float:
        if count == 1:
            return ordered[0]
        position = fraction * (count - 1)
        lower = int(math.floor(position))
        upper = min(count - 1, lower + 1)
        weight = position - lower
        return ordered[lower] * (1.0 - weight) + ordered[upper] * weight

    return {
        "count": float(count),
        "mean": sum(ordered) / count,
        "median": percentile(0.5),
        "p95": percentile(0.95),
        "min": ordered[0],
        "max": ordered[-1],
    }


@dataclass
class _RequestRecord:
    """Lifecycle bookkeeping for one request."""

    submit_time: float
    planned_pickup_distance: float = 0.0
    pickup_time: Optional[float] = None
    dropoff_time: Optional[float] = None
    shared: bool = False
    direct_distance: float = 0.0
    travelled_distance: float = 0.0


@dataclass
class SimulationStatistics:
    """Aggregated measurements of one simulation run."""

    response_times: List[float] = field(default_factory=list)
    option_counts: List[int] = field(default_factory=list)
    matched_requests: int = 0
    unmatched_requests: int = 0
    completed_requests: int = 0
    shared_requests: int = 0
    pickups: int = 0
    dropoffs: int = 0
    waiting_distances: List[float] = field(default_factory=list)
    detour_ratios: List[float] = field(default_factory=list)
    _records: Dict[str, _RequestRecord] = field(default_factory=dict)
    #: request ids whose record was created or mutated since the durable
    #: service's last snapshot point (drained by incremental deltas, which
    #: re-serialise only these instead of the whole records map); insertion
    #: order is first-dirtied order, so newly created records append to a
    #: folded state in creation order
    dirty_records: Dict[str, None] = field(
        default_factory=dict, repr=False, compare=False
    )

    # ------------------------------------------------------------------
    # event recording (called by the engine / service layer)
    # ------------------------------------------------------------------
    def record_submission(
        self,
        request_id: str,
        submit_time: float,
        option_count: int,
        response_seconds: float,
        matched: bool,
        planned_pickup_distance: float = 0.0,
        direct_distance: float = 0.0,
    ) -> None:
        """Record the outcome of one request submission."""
        self.response_times.append(response_seconds)
        self.option_counts.append(option_count)
        if matched:
            self.matched_requests += 1
            self._records[request_id] = _RequestRecord(
                submit_time=submit_time,
                planned_pickup_distance=planned_pickup_distance,
                direct_distance=direct_distance,
            )
            self.dirty_records[request_id] = None
        else:
            self.unmatched_requests += 1

    def record_pickup(self, request_id: str, time: float, actual_pickup_distance: float) -> None:
        """Record that a request's riders boarded their vehicle."""
        self.pickups += 1
        record = self._records.get(request_id)
        if record is None:
            return
        record.pickup_time = time
        self.dirty_records[request_id] = None
        self.waiting_distances.append(
            max(0.0, actual_pickup_distance - record.planned_pickup_distance)
        )

    def record_dropoff(self, request_id: str, time: float, travelled_distance: float) -> None:
        """Record that a request completed; compute its detour ratio."""
        self.dropoffs += 1
        record = self._records.get(request_id)
        if record is None:
            return
        record.dropoff_time = time
        record.travelled_distance = travelled_distance
        self.dirty_records[request_id] = None
        self.completed_requests += 1
        if record.shared:
            self.shared_requests += 1
        if record.direct_distance > 0:
            self.detour_ratios.append(travelled_distance / record.direct_distance)

    def record_shared(self, request_id: str) -> None:
        """Mark a request as having shared its vehicle with another request."""
        record = self._records.get(request_id)
        if record is not None:
            record.shared = True
            self.dirty_records[request_id] = None

    # ------------------------------------------------------------------
    # derived metrics (the website panel)
    # ------------------------------------------------------------------
    @property
    def total_requests(self) -> int:
        """Requests submitted (matched plus unmatched)."""
        return self.matched_requests + self.unmatched_requests

    @property
    def average_response_time(self) -> float:
        """Mean matcher latency in seconds (the demo's "average response time")."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    @property
    def average_option_count(self) -> float:
        """Mean number of non-dominated options offered per request."""
        if not self.option_counts:
            return 0.0
        return sum(self.option_counts) / len(self.option_counts)

    @property
    def match_rate(self) -> float:
        """Fraction of requests that accepted an option."""
        if self.total_requests == 0:
            return 0.0
        return self.matched_requests / self.total_requests

    @property
    def sharing_rate(self) -> float:
        """Fraction of completed requests that shared their vehicle."""
        if self.completed_requests == 0:
            return 0.0
        return self.shared_requests / self.completed_requests

    @property
    def average_detour_ratio(self) -> float:
        """Mean travelled / direct distance over completed requests."""
        if not self.detour_ratios:
            return 0.0
        return sum(self.detour_ratios) / len(self.detour_ratios)

    def panel(self) -> Dict[str, float]:
        """Return the statistics shown by the demo website, plus extras."""
        return {
            "requests": float(self.total_requests),
            "matched": float(self.matched_requests),
            "unmatched": float(self.unmatched_requests),
            "match_rate": self.match_rate,
            "average_response_time": self.average_response_time,
            "p95_response_time": summarise(self.response_times)["p95"],
            "average_options": self.average_option_count,
            "completed": float(self.completed_requests),
            "sharing_rate": self.sharing_rate,
            "average_detour_ratio": self.average_detour_ratio,
            "pickups": float(self.pickups),
            "dropoffs": float(self.dropoffs),
        }
