"""Simulation substrate: trips, workloads, statistics and the event loop.

The demonstration drives PTRider with a day of Shanghai taxi trips replayed
against a moving fleet.  This subpackage provides the equivalent machinery on
synthetic data:

* :mod:`repro.sim.trips` -- a seedable generator of Shanghai-like trip
  datasets (rush-hour peaks, hot spots, realistic trip lengths);
* :mod:`repro.sim.workload` -- request streams built from trip datasets or
  Poisson arrival processes;
* :mod:`repro.sim.stats` -- the statistics of the demo's website panel
  (average response time, average sharing rate, ...);
* :mod:`repro.sim.engine` -- the discrete-time simulation loop that moves
  vehicles, fires pick-ups / drop-offs and dispatches arriving requests.
"""

from repro.sim.engine import SimulationEngine, SimulationReport
from repro.sim.stats import SimulationStatistics
from repro.sim.trip_io import load_trips_csv, load_trips_json, save_trips_csv, save_trips_json
from repro.sim.trips import ShanghaiLikeTripGenerator, TripRecord
from repro.sim.workload import RequestWorkload, poisson_arrival_times

__all__ = [
    "RequestWorkload",
    "ShanghaiLikeTripGenerator",
    "SimulationEngine",
    "SimulationReport",
    "SimulationStatistics",
    "TripRecord",
    "load_trips_csv",
    "load_trips_json",
    "poisson_arrival_times",
    "save_trips_csv",
    "save_trips_json",
]
