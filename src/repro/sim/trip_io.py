"""Persistence of trip datasets.

The demo replays a fixed historical dataset; experiments become reproducible
when the (synthetic) dataset used for a run is archived next to its results.
Two formats are supported:

* CSV (``trip_id,origin,destination,riders,departure_time``), convenient for
  spreadsheets and external tools;
* JSON, convenient for bundling a dataset with the generator parameters that
  produced it.

Both round-trip exactly.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from repro.errors import ConfigurationError
from repro.sim.trips import TripRecord

__all__ = ["save_trips_csv", "load_trips_csv", "save_trips_json", "load_trips_json"]

PathLike = Union[str, Path]

_CSV_FIELDS = ("trip_id", "origin", "destination", "riders", "departure_time")


def save_trips_csv(trips: Iterable[TripRecord], path: PathLike) -> None:
    """Write a trip dataset as CSV with a header row."""
    with Path(path).open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(_CSV_FIELDS)
        for trip in trips:
            writer.writerow(
                [trip.trip_id, trip.origin, trip.destination, trip.riders, repr(trip.departure_time)]
            )


def load_trips_csv(path: PathLike) -> List[TripRecord]:
    """Read a trip dataset previously written by :func:`save_trips_csv`.

    Raises:
        ConfigurationError: on a malformed header or row.
    """
    trips: List[TripRecord] = []
    with Path(path).open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header) != _CSV_FIELDS:
            raise ConfigurationError(f"{path}: expected header {_CSV_FIELDS}, got {header}")
        for line_number, row in enumerate(reader, 2):
            if not row:
                continue
            if len(row) != len(_CSV_FIELDS):
                raise ConfigurationError(
                    f"{path}:{line_number}: expected {len(_CSV_FIELDS)} fields, got {len(row)}"
                )
            trips.append(
                TripRecord(
                    trip_id=row[0],
                    origin=int(row[1]),
                    destination=int(row[2]),
                    riders=int(row[3]),
                    departure_time=float(row[4]),
                )
            )
    return trips


def save_trips_json(
    trips: Iterable[TripRecord],
    path: PathLike,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Write a trip dataset (plus optional generator metadata) as JSON."""
    payload = {
        "metadata": dict(metadata or {}),
        "trips": [
            {
                "trip_id": trip.trip_id,
                "origin": trip.origin,
                "destination": trip.destination,
                "riders": trip.riders,
                "departure_time": trip.departure_time,
            }
            for trip in trips
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")


def load_trips_json(path: PathLike) -> List[TripRecord]:
    """Read a trip dataset previously written by :func:`save_trips_json`."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    trips = []
    for entry in payload.get("trips", []):
        trips.append(
            TripRecord(
                trip_id=str(entry["trip_id"]),
                origin=int(entry["origin"]),
                destination=int(entry["destination"]),
                riders=int(entry["riders"]),
                departure_time=float(entry["departure_time"]),
            )
        )
    return trips


def load_trips_metadata(path: PathLike) -> Dict[str, object]:
    """Return the metadata block of a JSON trip dataset (empty when absent)."""
    payload = json.loads(Path(path).read_text(encoding="utf-8"))
    return dict(payload.get("metadata", {}))
