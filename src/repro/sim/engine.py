"""The discrete-time simulation loop.

The demonstration (Section 4) drives PTRider with a day of taxi trips: the
vehicles are initialised uniformly over the road network, follow their
planned schedule when serving riders and wander randomly when idle, all at a
constant speed; requests arrive over time, are answered by the matcher and,
once a rider accepts an option, the serving vehicle's schedule and the
indexes are updated; pick-ups and drop-offs fire as vehicles reach the
corresponding stops.

:class:`SimulationEngine` reproduces that loop in discrete ticks:

1. release every request whose submission time falls inside the tick and
   dispatch it (matching latency and option counts are recorded);
2. advance every vehicle by ``speed * tick`` distance units along its best
   schedule (or along a random walk when idle), firing pick-up / drop-off
   events as stops are reached and keeping the grid's vehicle lists fresh.

The engine is deterministic for a fixed seed, workload and fleet
initialisation, which the regression tests rely on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.dispatcher import Dispatcher, OptionPolicy
from repro.errors import SimulationError
from repro.model.stops import Stop
from repro.sim.stats import SimulationStatistics
from repro.sim.workload import RequestWorkload
from repro.vehicles.movement import MotionState, plan_route, random_idle_route, step_along_route
from repro.vehicles.vehicle import Vehicle

__all__ = ["SimulationReport", "SimulationEngine"]


@dataclass(frozen=True)
class SimulationReport:
    """Summary of one simulation run."""

    simulated_time: float
    ticks: int
    statistics: SimulationStatistics
    matcher_statistics: Dict[str, float]
    fleet_statistics: Dict[str, float]

    def panel(self) -> Dict[str, float]:
        """The demo website panel plus run metadata."""
        panel = self.statistics.panel()
        panel["simulated_time"] = self.simulated_time
        panel["ticks"] = float(self.ticks)
        return panel


@dataclass
class _AssignmentRecord:
    """Per-request bookkeeping needed to measure waiting distances."""

    vehicle_id: str
    planned_pickup_distance: float
    driven_at_assignment: float


class SimulationEngine:
    """Replays a request workload against a moving fleet."""

    def __init__(
        self,
        dispatcher: Dispatcher,
        workload: RequestWorkload,
        speed: float = 1.0,
        tick: float = 1.0,
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        seed: Optional[int] = None,
        idle_wander: bool = True,
        statistics: Optional[SimulationStatistics] = None,
    ) -> None:
        if speed <= 0:
            raise SimulationError(f"speed must be positive, got {speed}")
        if tick <= 0:
            raise SimulationError(f"tick must be positive, got {tick}")
        self._dispatcher = dispatcher
        self._fleet = dispatcher.fleet
        self._network = self._fleet.grid.network
        self._workload = workload
        self._speed = speed
        self._tick = tick
        self._policy = policy
        self._rng = random.Random(seed)
        self._idle_wander = idle_wander
        self.statistics = statistics or SimulationStatistics()
        self._time = 0.0
        self._ticks = 0
        self._motions: Dict[str, MotionState] = {}
        self._targets: Dict[str, Optional[int]] = {}
        self._assignments: Dict[str, _AssignmentRecord] = {}

    # ------------------------------------------------------------------
    @property
    def _oracle(self):
        # Read through the fleet so admin-panel routing-backend swaps
        # (PTRiderService.set_parameters) take effect mid-run.
        return self._fleet.oracle

    @property
    def time(self) -> float:
        """Current simulation time."""
        return self._time

    @property
    def dispatcher(self) -> Dispatcher:
        """The dispatcher answering the requests."""
        return self._dispatcher

    def run(self, until: Optional[float] = None, max_ticks: Optional[int] = None) -> SimulationReport:
        """Run the simulation until ``until`` (or until the workload drains).

        Args:
            until: simulated time to stop at; defaults to the workload
                duration plus a drain margin so the last riders are delivered.
            max_ticks: hard cap on the number of ticks (safety valve for
                tests and benchmarks).
        """
        if until is None:
            until = self._workload.duration + 100.0 * self._tick
        ticks_budget = max_ticks if max_ticks is not None else int(until / self._tick) + 1
        while self._time < until and ticks_budget > 0:
            self.step()
            ticks_budget -= 1
        return self.report()

    def report(self) -> SimulationReport:
        """Return the current statistics without advancing the simulation."""
        return SimulationReport(
            simulated_time=self._time,
            ticks=self._ticks,
            statistics=self.statistics,
            matcher_statistics=self._dispatcher.matcher.statistics.as_dict(),
            fleet_statistics=self._fleet.occupancy_statistics(),
        )

    # ------------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one tick."""
        self._time += self._tick
        self._ticks += 1
        self._release_requests()
        for vehicle in self._fleet.vehicles():
            self._advance_vehicle(vehicle, self._speed * self._tick)

    def _release_requests(self) -> None:
        # All requests whose submission time falls inside this tick are
        # simultaneous in the sense of Section 2.5, so they go through the
        # dispatcher's batched greedy pipeline as one batch (shared routing
        # contexts, optional fleet sharding) instead of one dispatch call
        # each; the outcomes are identical to the request-by-request loop.
        # Bookkeeping runs through ``on_outcome`` as each commit lands, so a
        # request with broken endpoints raising mid-batch cannot discard its
        # predecessors' records -- the failure surfaces exactly as it did
        # when the engine dispatched request by request.
        due = list(self._workload.due(self._time))
        if not due:
            return
        self._dispatcher.dispatch_batch(
            due, policy=self._policy, on_outcome=self._record_outcome
        )

    def _record_outcome(self, outcome) -> None:
        """Record one dispatch outcome (statistics, assignment, idle route)."""
        request = outcome.request
        chosen = outcome.chosen
        self.statistics.record_submission(
            request_id=request.request_id,
            submit_time=request.submit_time,
            option_count=outcome.option_count,
            response_seconds=outcome.match_seconds,
            matched=outcome.matched,
            planned_pickup_distance=chosen.pickup_distance if chosen else 0.0,
            # the dispatcher carries the context's direct distance, so no
            # routing-engine re-query (which could grow a fresh tree) here
            direct_distance=outcome.direct_distance,
        )
        if chosen is not None:
            vehicle = self._fleet.get(chosen.vehicle_id)
            self._assignments[request.request_id] = _AssignmentRecord(
                vehicle_id=chosen.vehicle_id,
                planned_pickup_distance=chosen.pickup_distance,
                driven_at_assignment=vehicle.distance_driven,
            )
            # A newly assigned vehicle must head for its (possibly new)
            # first stop, so drop its cached idle route / target.
            self._targets.pop(chosen.vehicle_id, None)

    def register_assignment(
        self, request_id: str, vehicle_id: str, planned_pickup_distance: float
    ) -> None:
        """Register an assignment made outside the engine (e.g. by the service layer).

        The engine uses the record to measure the rider's waiting distance when
        the pick-up eventually fires, and to clear the vehicle's idle route.
        """
        vehicle = self._fleet.get(vehicle_id)
        self._assignments[request_id] = _AssignmentRecord(
            vehicle_id=vehicle_id,
            planned_pickup_distance=planned_pickup_distance,
            driven_at_assignment=vehicle.distance_driven,
        )
        self._targets.pop(vehicle_id, None)

    # ------------------------------------------------------------------
    # vehicle movement
    # ------------------------------------------------------------------
    def _advance_vehicle(self, vehicle: Vehicle, budget: float) -> None:
        previous_cell = self._fleet.grid.cell_of_vertex(vehicle.location).cell_id
        guard = 0
        while budget > 1e-9:
            guard += 1
            if guard > 10_000:  # pragma: no cover - defensive guard
                raise SimulationError(f"vehicle {vehicle.vehicle_id} made no progress")
            if vehicle.is_empty:
                travelled = self._advance_idle(vehicle, budget)
            else:
                travelled = self._advance_serving(vehicle, budget)
            if travelled <= 0:
                break
            budget -= travelled
        current_cell = self._fleet.grid.cell_of_vertex(vehicle.location).cell_id
        if current_cell != previous_cell:
            self._fleet.refresh_vehicle(vehicle.vehicle_id)

    def _advance_idle(self, vehicle: Vehicle, budget: float) -> float:
        if not self._idle_wander:
            return 0.0
        motion = self._motions.get(vehicle.vehicle_id)
        if motion is None or not motion.has_route:
            anchor = motion.location if motion is not None else vehicle.location
            motion = random_idle_route(self._network, anchor, self._rng, hops=3)
            self._targets[vehicle.vehicle_id] = None
        new_motion, travelled, _reached = step_along_route(self._network, motion, budget)
        self._motions[vehicle.vehicle_id] = new_motion
        self._sync_vehicle_location(vehicle, new_motion)
        vehicle.record_progress(travelled)
        return travelled

    def _advance_serving(self, vehicle: Vehicle, budget: float) -> float:
        next_stop = vehicle.kinetic_tree.next_stop(self._oracle.distance, vehicle.offset)
        if next_stop is None:
            return 0.0
        motion = self._motions.get(vehicle.vehicle_id)
        if motion is None:
            motion = MotionState(location=vehicle.location)
        if self._targets.get(vehicle.vehicle_id) != next_stop.vertex or not motion.has_route:
            motion = self._plan_towards(motion, next_stop.vertex)
            self._targets[vehicle.vehicle_id] = next_stop.vertex
        if not motion.has_route and motion.location == next_stop.vertex:
            # Already standing at the stop: serve it without consuming budget.
            self._motions[vehicle.vehicle_id] = motion
            self._sync_vehicle_location(vehicle, motion)
            self._serve_stops_at_current_vertex(vehicle)
            self._targets[vehicle.vehicle_id] = None
            # Signal the caller that progress was made even though no distance
            # was travelled, by restarting the loop with a tiny epsilon cost.
            return min(budget, 1e-9) if budget > 1e-9 else 0.0
        new_motion, travelled, _reached = step_along_route(self._network, motion, budget)
        self._motions[vehicle.vehicle_id] = new_motion
        self._sync_vehicle_location(vehicle, new_motion)
        vehicle.record_progress(travelled)
        if not new_motion.has_route and new_motion.location == next_stop.vertex:
            self._serve_stops_at_current_vertex(vehicle)
            self._targets[vehicle.vehicle_id] = None
        return travelled

    def _plan_towards(self, motion: MotionState, target: int) -> MotionState:
        """Plan a route to ``target``, finishing the current edge first if mid-edge."""
        if motion.offset > 0 and motion.has_route:
            head = motion.route[0]
            rest = plan_route(self._network, head, target)
            return MotionState(location=motion.location, route=(head,) + rest.route, offset=motion.offset)
        return plan_route(self._network, motion.location, target)

    def _sync_vehicle_location(self, vehicle: Vehicle, motion: MotionState) -> None:
        """Mirror a motion state into the vehicle's (next-vertex, offset) location."""
        if motion.has_route:
            next_vertex = motion.route[0]
            remaining = self._network.edge_weight(motion.location, next_vertex) - motion.offset
            vehicle.set_location(next_vertex, offset=max(0.0, remaining))
        else:
            vehicle.set_location(motion.location, offset=0.0)

    # ------------------------------------------------------------------
    # stop handling
    # ------------------------------------------------------------------
    def _serve_stops_at_current_vertex(self, vehicle: Vehicle) -> None:
        """Fire every pick-up / drop-off whose stop is the vehicle's current vertex."""
        while True:
            next_stop = vehicle.kinetic_tree.next_stop(self._oracle.distance, vehicle.offset)
            if next_stop is None or next_stop.vertex != vehicle.location or vehicle.offset > 1e-9:
                break
            self._serve_stop(vehicle, next_stop)

    def _serve_stop(self, vehicle: Vehicle, stop: Stop) -> None:
        vehicle.arrive_at_stop(stop)
        if stop.is_pickup:
            self._handle_pickup(vehicle, stop)
        else:
            self._handle_dropoff(vehicle, stop)

    def _handle_pickup(self, vehicle: Vehicle, stop: Stop) -> None:
        # Sharing: everyone already on board shares with the newcomer.
        already_onboard = list(vehicle.onboard_requests)
        if already_onboard:
            self.statistics.record_shared(stop.request_id)
            for other in already_onboard:
                self.statistics.record_shared(other)
        self._dispatcher.notify_pickup(vehicle.vehicle_id, stop.request_id)
        record = self._assignments.get(stop.request_id)
        actual_distance = 0.0
        if record is not None:
            actual_distance = vehicle.distance_driven - record.driven_at_assignment
            self.statistics.record_pickup(stop.request_id, self._time, actual_distance)
        else:
            self.statistics.record_pickup(stop.request_id, self._time, 0.0)

    def _handle_dropoff(self, vehicle: Vehicle, stop: Stop) -> None:
        onboard = vehicle.onboard_requests.get(stop.request_id)
        travelled = onboard.travelled_since_pickup if onboard is not None else 0.0
        self._dispatcher.notify_dropoff(vehicle.vehicle_id, stop.request_id)
        self.statistics.record_dropoff(stop.request_id, self._time, travelled)
        self._assignments.pop(stop.request_id, None)
