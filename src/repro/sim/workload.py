"""Request workloads for the simulation engine and the benchmarks.

A workload is an ordered stream of :class:`~repro.model.request.Request`
objects with submission times.  Workloads are built

* from a trip dataset (the demo replays the Shanghai trips as requests), or
* from a Poisson arrival process over random origin/destination pairs, which
  is what the parameter-sweep benchmarks use because it isolates the request
  *rate* from the spatial structure.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.model.request import Request
from repro.roadnet.graph import RoadNetwork
from repro.sim.trips import DailyDemandProfile, TripRecord

__all__ = [
    "RequestWorkload",
    "poisson_arrival_times",
    "nonhomogeneous_poisson_arrival_times",
    "requests_from_trips",
    "random_requests",
]


def poisson_arrival_times(
    rate_per_second: float,
    duration: float,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Return arrival times of a homogeneous Poisson process on ``[0, duration]``.

    Args:
        rate_per_second: expected arrivals per time unit (> 0).
        duration: length of the observation window.
        rng: random generator (a fresh unseeded one is used when omitted).
    """
    if rate_per_second <= 0:
        raise ConfigurationError(f"rate_per_second must be positive, got {rate_per_second}")
    if duration < 0:
        raise ConfigurationError(f"duration must be non-negative, got {duration}")
    generator = rng or random.Random()
    times: List[float] = []
    current = 0.0
    while True:
        current += generator.expovariate(rate_per_second)
        if current > duration:
            break
        times.append(current)
    return times


def nonhomogeneous_poisson_arrival_times(
    rate_fn: Callable[[float], float],
    max_rate: float,
    duration: float,
    rng: Optional[random.Random] = None,
) -> List[float]:
    """Arrival times of a nonhomogeneous Poisson process by thinning.

    Candidate arrivals are generated at the envelope ``max_rate`` and each
    kept with probability ``rate_fn(t) / max_rate`` -- the classic Lewis &
    Shedler construction, which is what gives a replayed day its surge and
    lull structure instead of a flat arrival stream.

    Args:
        rate_fn: instantaneous arrival rate at time ``t`` (must never exceed
            ``max_rate`` on ``[0, duration]``).
        max_rate: envelope rate used for the candidate stream (> 0).
        duration: length of the observation window.
        rng: random generator (a fresh unseeded one is used when omitted).
    """
    if max_rate <= 0:
        raise ConfigurationError(f"max_rate must be positive, got {max_rate}")
    if duration < 0:
        raise ConfigurationError(f"duration must be non-negative, got {duration}")
    generator = rng or random.Random()
    times: List[float] = []
    current = 0.0
    while True:
        current += generator.expovariate(max_rate)
        if current > duration:
            break
        rate = rate_fn(current)
        if rate < 0 or rate > max_rate:
            raise ConfigurationError(
                f"rate_fn({current}) = {rate} outside the envelope [0, {max_rate}]"
            )
        if generator.random() * max_rate < rate:
            times.append(current)
    return times


def requests_from_trips(
    trips: Iterable[TripRecord],
    max_waiting: float,
    service_constraint: float,
    id_prefix: str = "R",
) -> List[Request]:
    """Convert trip records into ridesharing requests with global constraints."""
    requests: List[Request] = []
    for index, trip in enumerate(trips, 1):
        requests.append(
            Request(
                start=trip.origin,
                destination=trip.destination,
                riders=trip.riders,
                max_waiting=max_waiting,
                service_constraint=service_constraint,
                request_id=f"{id_prefix}{index}",
                submit_time=trip.departure_time,
            )
        )
    return requests


def random_requests(
    network: RoadNetwork,
    count: int,
    max_waiting: float,
    service_constraint: float,
    duration: float = 0.0,
    riders_range: Tuple[int, int] = (1, 2),
    seed: Optional[int] = None,
    id_prefix: str = "R",
) -> List[Request]:
    """Return ``count`` uniformly random requests on ``network``.

    With ``duration > 0`` submission times are spread uniformly over the
    window; otherwise every request is submitted at time zero (a burst).
    """
    if count < 0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    low, high = riders_range
    if low < 1 or high < low:
        raise ConfigurationError(f"invalid riders_range {riders_range}")
    rng = random.Random(seed)
    vertices = network.vertices()
    if len(vertices) < 2:
        raise ConfigurationError("the network needs at least two vertices")
    requests: List[Request] = []
    for index in range(1, count + 1):
        origin, destination = rng.sample(vertices, 2)
        submit = rng.uniform(0.0, duration) if duration > 0 else 0.0
        requests.append(
            Request(
                start=origin,
                destination=destination,
                riders=rng.randint(low, high),
                max_waiting=max_waiting,
                service_constraint=service_constraint,
                request_id=f"{id_prefix}{index}",
                submit_time=submit,
            )
        )
    requests.sort(key=lambda request: request.submit_time)
    return requests


@dataclass
class RequestWorkload:
    """An ordered request stream consumed by the simulation engine."""

    requests: List[Request] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.requests = sorted(self.requests, key=lambda request: request.submit_time)
        self._cursor = 0

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[Request]:
        return iter(self.requests)

    @property
    def duration(self) -> float:
        """Submission time of the last request (0 for an empty workload)."""
        if not self.requests:
            return 0.0
        return self.requests[-1].submit_time

    def reset(self) -> None:
        """Rewind the consumption cursor (for re-running a simulation)."""
        self._cursor = 0

    def due(self, until_time: float) -> List[Request]:
        """Pop every request submitted at or before ``until_time``."""
        released: List[Request] = []
        while self._cursor < len(self.requests) and self.requests[self._cursor].submit_time <= until_time:
            released.append(self.requests[self._cursor])
            self._cursor += 1
        return released

    @property
    def remaining(self) -> int:
        """Requests not yet released."""
        return len(self.requests) - self._cursor

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_trips(
        cls,
        trips: Iterable[TripRecord],
        max_waiting: float,
        service_constraint: float,
    ) -> "RequestWorkload":
        """Build a workload that replays a trip dataset."""
        return cls(requests_from_trips(trips, max_waiting, service_constraint))

    @classmethod
    def poisson(
        cls,
        network: RoadNetwork,
        rate_per_second: float,
        duration: float,
        max_waiting: float,
        service_constraint: float,
        riders_range: Tuple[int, int] = (1, 2),
        seed: Optional[int] = None,
    ) -> "RequestWorkload":
        """Build a Poisson workload with uniformly random endpoints."""
        rng = random.Random(seed)
        times = poisson_arrival_times(rate_per_second, duration, rng)
        vertices = network.vertices()
        if len(vertices) < 2:
            raise ConfigurationError("the network needs at least two vertices")
        low, high = riders_range
        requests = []
        for index, submit in enumerate(times, 1):
            origin, destination = rng.sample(vertices, 2)
            requests.append(
                Request(
                    start=origin,
                    destination=destination,
                    riders=rng.randint(low, high),
                    max_waiting=max_waiting,
                    service_constraint=service_constraint,
                    request_id=f"P{index}",
                    submit_time=submit,
                )
            )
        return cls(requests)

    @classmethod
    def daily(
        cls,
        network: RoadNetwork,
        total: int,
        duration: float,
        max_waiting: float,
        service_constraint: float,
        profile: Optional[DailyDemandProfile] = None,
        hotspot_count: int = 0,
        hotspot_bias: float = 1.0,
        riders_range: Tuple[int, int] = (1, 2),
        seed: Optional[int] = None,
        id_prefix: str = "D",
    ) -> "RequestWorkload":
        """A synthetic high-volume day: surge/lull arrivals, hotspot origins.

        Exactly ``total`` requests are generated with arrival times drawn
        from the demand profile's intensity over ``[0, duration]`` (the
        replay horizon is mapped onto a 24h day, so the profile's morning
        and evening peaks become surges of the replay).  Conditioned on the
        total count, a nonhomogeneous Poisson process's arrival times are
        exactly i.i.d. draws from the normalised intensity density -- the
        inverse-CDF sampling used here -- so the stream has the same
        surge/lull shape as :func:`nonhomogeneous_poisson_arrival_times`
        while giving benchmarks a deterministic request count.

        With ``hotspot_count > 0``, each origin is drawn from a pool of
        exactly that many hotspot *vertices* with probability
        ``hotspot_bias`` (uniformly random otherwise); destinations are
        always uniform.  Exact-vertex origins are what make a serving
        window's start trees shareable -- the request-collision structure
        the micro-batched ingest path amortises.

        Args:
            network: the road network requests are drawn on.
            total: number of requests to generate (>= 0).
            duration: replay horizon the day is compressed into (> 0).
            max_waiting: per-request waiting budget ``w``.
            service_constraint: per-request detour tolerance ``epsilon``.
            profile: daily demand intensity (the default bimodal profile
                when omitted).
            hotspot_count: size of the exact-vertex origin pool (0 disables
                hotspot structure).
            hotspot_bias: probability an origin comes from the hotspot pool.
            riders_range: inclusive group-size range.
            seed: RNG seed (fully deterministic per seed).
            id_prefix: request-id prefix (ids are ``{prefix}{index}``).
        """
        if total < 0:
            raise ConfigurationError(f"total must be non-negative, got {total}")
        if duration <= 0:
            raise ConfigurationError(f"duration must be positive, got {duration}")
        if not 0.0 <= hotspot_bias <= 1.0:
            raise ConfigurationError(
                f"hotspot_bias must be within [0, 1], got {hotspot_bias}"
            )
        if hotspot_count < 0:
            raise ConfigurationError(
                f"hotspot_count must be non-negative, got {hotspot_count}"
            )
        low, high = riders_range
        if low < 1 or high < low:
            raise ConfigurationError(f"invalid riders_range {riders_range}")
        vertices = network.vertices()
        if len(vertices) < 2:
            raise ConfigurationError("the network needs at least two vertices")
        rng = random.Random(seed)
        shape = profile or DailyDemandProfile()
        weights = shape.cumulative_weights()
        total_weight = weights[-1]
        hotspots = (
            rng.sample(vertices, min(hotspot_count, len(vertices)))
            if hotspot_count
            else []
        )
        bucket_width = duration / len(weights)
        times: List[float] = []
        for _ in range(total):
            pick = rng.random() * total_weight
            bucket = bisect_left(weights, pick)
            previous = weights[bucket - 1] if bucket else 0.0
            span = weights[bucket] - previous
            fraction = (pick - previous) / span if span > 0 else rng.random()
            times.append((bucket + fraction) * bucket_width)
        times.sort()
        requests: List[Request] = []
        for index, submit in enumerate(times, 1):
            if hotspots and rng.random() < hotspot_bias:
                origin = rng.choice(hotspots)
            else:
                origin = rng.choice(vertices)
            destination = rng.choice(vertices)
            while destination == origin:
                destination = rng.choice(vertices)
            requests.append(
                Request(
                    start=origin,
                    destination=destination,
                    riders=rng.randint(low, high),
                    max_waiting=max_waiting,
                    service_constraint=service_constraint,
                    request_id=f"{id_prefix}{index}",
                    submit_time=submit,
                )
            )
        return cls(requests)
