"""Synthetic Shanghai-like trip datasets.

The demonstration replays 432,327 trips extracted from 17,000 Shanghai taxis
over one day (May 29, 2009).  That dataset is not redistributable, so this
module generates a *statistically similar* substitute at any scale:

* a **bimodal daily demand profile** with a morning and an evening rush hour
  (plus a smaller lunchtime bump), matching published Shanghai taxi demand
  curves;
* **hot spots**: a configurable number of attraction centres (business
  districts, transport hubs); origins and destinations are drawn near hot
  spots with higher probability than uniformly at random, and flows reverse
  between the morning and evening peaks (home -> work, then work -> home);
* **trip lengths** whose distribution is right-skewed (many short urban hops,
  a long tail of cross-city trips);
* **group sizes** dominated by single riders with occasional groups, matching
  the demo's rider-count input.

Every generator is deterministic for a given seed, so experiments are
reproducible.  The matchers never look at anything beyond the trip tuples
``(origin, destination, riders, departure_time)``, which is why this
substitution preserves the behaviour the paper evaluates (see DESIGN.md §3).
"""

from __future__ import annotations

import bisect
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.roadnet.graph import RoadNetwork

__all__ = ["TripRecord", "DailyDemandProfile", "ShanghaiLikeTripGenerator"]

#: Number of simulation seconds in one day.
SECONDS_PER_DAY = 86_400.0

#: Size of the real dataset the demo uses, kept for documentation and scaling.
SHANGHAI_TRIPS = 432_327
SHANGHAI_TAXIS = 17_000


@dataclass(frozen=True)
class TripRecord:
    """One historical trip: where and when a rider group travelled."""

    trip_id: str
    origin: int
    destination: int
    riders: int
    departure_time: float

    def __post_init__(self) -> None:
        if self.origin == self.destination:
            raise ConfigurationError(f"trip {self.trip_id}: origin equals destination")
        if self.riders < 1:
            raise ConfigurationError(f"trip {self.trip_id}: riders must be >= 1")
        if self.departure_time < 0:
            raise ConfigurationError(f"trip {self.trip_id}: departure_time must be non-negative")


@dataclass(frozen=True)
class DailyDemandProfile:
    """Piecewise demand intensity over a day.

    The default profile has a strong morning peak (07:30--09:30), a lunch
    bump, and the strongest evening peak (17:00--20:00), on top of a low
    night-time base -- the classic urban taxi demand shape.
    """

    #: ``(hour_of_day, relative_intensity)`` control points; linearly interpolated.
    control_points: Tuple[Tuple[float, float], ...] = (
        (0.0, 0.25),
        (3.0, 0.10),
        (6.0, 0.35),
        (8.0, 1.00),
        (10.0, 0.55),
        (12.5, 0.70),
        (15.0, 0.55),
        (18.0, 1.20),
        (20.0, 0.85),
        (22.5, 0.45),
        (24.0, 0.25),
    )

    def intensity(self, time_of_day_seconds: float) -> float:
        """Relative demand intensity at a time of day (seconds since midnight)."""
        hour = (time_of_day_seconds % SECONDS_PER_DAY) / 3600.0
        points = self.control_points
        for (h0, v0), (h1, v1) in zip(points, points[1:]):
            if h0 <= hour <= h1:
                if h1 == h0:
                    return v1
                fraction = (hour - h0) / (h1 - h0)
                return v0 + fraction * (v1 - v0)
        return points[-1][1]

    def cumulative_weights(self, buckets: int = 288) -> List[float]:
        """Cumulative intensity over ``buckets`` equal slices of the day."""
        step = SECONDS_PER_DAY / buckets
        weights: List[float] = []
        total = 0.0
        for bucket in range(buckets):
            total += self.intensity((bucket + 0.5) * step)
            weights.append(total)
        return weights


class ShanghaiLikeTripGenerator:
    """Generate a day of taxi trips with Shanghai-like structure.

    Args:
        network: the road network trips are drawn on.
        seed: RNG seed (the generator is fully deterministic per seed).
        hotspot_count: number of attraction centres.
        hotspot_bias: probability that a trip endpoint is drawn near a hot
            spot rather than uniformly.
        mean_group_size_decay: geometric decay of group sizes (larger means
            more single riders).
        demand_profile: daily demand intensity; defaults to the bimodal
            profile described in the module docstring.
    """

    def __init__(
        self,
        network: RoadNetwork,
        seed: Optional[int] = None,
        hotspot_count: int = 6,
        hotspot_bias: float = 0.6,
        mean_group_size_decay: float = 0.65,
        demand_profile: Optional[DailyDemandProfile] = None,
    ) -> None:
        if hotspot_count < 1:
            raise ConfigurationError(f"hotspot_count must be >= 1, got {hotspot_count}")
        if not 0.0 <= hotspot_bias <= 1.0:
            raise ConfigurationError(f"hotspot_bias must be in [0, 1], got {hotspot_bias}")
        if not 0.0 < mean_group_size_decay < 1.0:
            raise ConfigurationError(
                f"mean_group_size_decay must be in (0, 1), got {mean_group_size_decay}"
            )
        self._network = network
        self._rng = random.Random(seed)
        self._hotspot_bias = hotspot_bias
        self._group_decay = mean_group_size_decay
        self._profile = demand_profile or DailyDemandProfile()
        self._vertices = network.vertices()
        if len(self._vertices) < 2:
            raise ConfigurationError("the network needs at least two vertices to generate trips")
        self._hotspots = self._pick_hotspots(hotspot_count)
        self._hotspot_neighbourhoods = {
            hotspot: self._neighbourhood(hotspot) for hotspot in self._hotspots
        }

    # ------------------------------------------------------------------
    @property
    def hotspots(self) -> List[int]:
        """The chosen hot-spot vertices (for plotting / documentation)."""
        return list(self._hotspots)

    def generate(
        self,
        trip_count: int,
        max_riders: int = 4,
        day_seconds: float = SECONDS_PER_DAY,
    ) -> List[TripRecord]:
        """Return ``trip_count`` trips spread over one day.

        Trips are sorted by departure time.  Departure times follow the
        demand profile; origins/destinations follow the hot-spot model with
        direction reversal between the morning and the evening.
        """
        if trip_count < 0:
            raise ConfigurationError(f"trip_count must be non-negative, got {trip_count}")
        if max_riders < 1:
            raise ConfigurationError(f"max_riders must be >= 1, got {max_riders}")
        cumulative = self._profile.cumulative_weights()
        total_weight = cumulative[-1]
        bucket_width = day_seconds / len(cumulative)

        trips: List[TripRecord] = []
        for index in range(trip_count):
            target = self._rng.uniform(0.0, total_weight)
            bucket = bisect.bisect_left(cumulative, target)
            departure = min(
                day_seconds,
                bucket * bucket_width + self._rng.uniform(0.0, bucket_width),
            )
            origin, destination = self._draw_endpoints(departure, day_seconds)
            riders = self._draw_group_size(max_riders)
            trips.append(
                TripRecord(
                    trip_id=f"T{index + 1}",
                    origin=origin,
                    destination=destination,
                    riders=riders,
                    departure_time=departure,
                )
            )
        trips.sort(key=lambda trip: trip.departure_time)
        return trips

    def generate_scaled_day(
        self,
        scale: float = 0.01,
        max_riders: int = 4,
        day_seconds: float = SECONDS_PER_DAY,
    ) -> List[TripRecord]:
        """Return a ``scale`` fraction of the real dataset's 432,327 trips."""
        if scale <= 0:
            raise ConfigurationError(f"scale must be positive, got {scale}")
        return self.generate(max(1, int(SHANGHAI_TRIPS * scale)), max_riders, day_seconds)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pick_hotspots(self, count: int) -> List[int]:
        count = min(count, len(self._vertices))
        return self._rng.sample(self._vertices, count)

    def _neighbourhood(self, hotspot: int, size: int = 12) -> List[int]:
        """Vertices near a hot spot (breadth-first by hop count)."""
        frontier = [hotspot]
        seen = {hotspot}
        order = [hotspot]
        while frontier and len(order) < size:
            nxt: List[int] = []
            for vertex in frontier:
                for neighbour in self._network.neighbours_view(vertex):
                    if neighbour not in seen:
                        seen.add(neighbour)
                        order.append(neighbour)
                        nxt.append(neighbour)
                        if len(order) >= size:
                            break
                if len(order) >= size:
                    break
            frontier = nxt
        return order

    def _draw_near_hotspot(self) -> int:
        hotspot = self._rng.choice(self._hotspots)
        return self._rng.choice(self._hotspot_neighbourhoods[hotspot])

    def _draw_endpoints(self, departure: float, day_seconds: float) -> Tuple[int, int]:
        """Draw an (origin, destination) pair respecting the commuting direction."""
        hour = (departure / day_seconds) * 24.0
        morning = 6.0 <= hour < 12.0
        towards_hotspot = morning  # commute into the centres in the morning
        for _ in range(32):
            if self._rng.random() < self._hotspot_bias:
                hotspot_end = self._draw_near_hotspot()
                other_end = self._rng.choice(self._vertices)
                origin, destination = (
                    (other_end, hotspot_end) if towards_hotspot else (hotspot_end, other_end)
                )
            else:
                origin = self._rng.choice(self._vertices)
                destination = self._rng.choice(self._vertices)
            if origin != destination:
                return origin, destination
        # Extremely small networks may need a deterministic fallback.
        origin = self._vertices[0]
        destination = self._vertices[1]
        return origin, destination

    def _draw_group_size(self, max_riders: int) -> int:
        """Geometric-ish group size: mostly 1, occasionally up to ``max_riders``."""
        riders = 1
        while riders < max_riders and self._rng.random() > self._group_decay:
            riders += 1
        return riders
