"""The price model of Definition 3.

For a request ``R = <s, d, n, w, epsilon>`` inserted into a vehicle whose
current trip schedule is ``tr_i``, producing the new schedule ``tr_j``, the
price is

    price = f_n * (dist(tr_j) - dist(tr_i) + dist(s, d))

i.e. the rider pays for the extra distance the vehicle drives because of them
*plus* their own direct trip distance, scaled by a ratio ``f_n`` that grows
with the group size ``n``.  The paper uses ``f_n = 0.3 + (n - 1) * 0.1``.

The website interface of the demonstration lets an administrator change "the
price calculator function"; :class:`LinearPriceModel` therefore exposes the
base ratio, the per-rider increment and an optional flat booking fee, and the
matchers accept any object implementing the :class:`PriceModel` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = ["rider_price_ratio", "PriceModel", "LinearPriceModel"]

#: Base fare ratio for a single rider (the paper's 0.3).
DEFAULT_BASE_RATIO = 0.3
#: Ratio increment per additional rider in the group (the paper's 0.1).
DEFAULT_RIDER_INCREMENT = 0.1


def rider_price_ratio(
    riders: int,
    base_ratio: float = DEFAULT_BASE_RATIO,
    rider_increment: float = DEFAULT_RIDER_INCREMENT,
) -> float:
    """Return ``f_n = base_ratio + (n - 1) * rider_increment``.

    Raises:
        ConfigurationError: for a non-positive rider count or negative ratios.
    """
    if riders < 1:
        raise ConfigurationError(f"riders must be >= 1, got {riders}")
    if base_ratio < 0 or rider_increment < 0:
        raise ConfigurationError("price ratios must be non-negative")
    return base_ratio + (riders - 1) * rider_increment


@runtime_checkable
class PriceModel(Protocol):
    """Anything able to price a candidate insertion.

    Implementations must be pure functions of their arguments so matchers can
    call them while exploring candidate schedules.
    """

    def price(self, riders: int, added_distance: float, direct_distance: float) -> float:
        """Return the price of an option.

        Args:
            riders: the group size ``n``.
            added_distance: ``dist(tr_j) - dist(tr_i)``, the extra distance
                the vehicle drives because of the request.
            direct_distance: ``dist(s, d)``, the request's shortest-path
                distance.
        """
        ...  # pragma: no cover - protocol definition


@dataclass(frozen=True)
class LinearPriceModel:
    """The paper's price model with configurable coefficients.

    Attributes:
        base_ratio: ratio applied to a single rider (paper: 0.3).
        rider_increment: ratio increment per extra rider (paper: 0.1).
        booking_fee: flat fee added to every option (paper: 0); exposed
            because the demo lets the administrator change the price
            calculator.
    """

    base_ratio: float = DEFAULT_BASE_RATIO
    rider_increment: float = DEFAULT_RIDER_INCREMENT
    booking_fee: float = 0.0

    def __post_init__(self) -> None:
        if self.base_ratio < 0 or self.rider_increment < 0 or self.booking_fee < 0:
            raise ConfigurationError("price model coefficients must be non-negative")

    def ratio(self, riders: int) -> float:
        """Return ``f_n`` for a group of ``riders``."""
        return rider_price_ratio(riders, self.base_ratio, self.rider_increment)

    def price(self, riders: int, added_distance: float, direct_distance: float) -> float:
        """Price an option per Definition 3 (plus the optional booking fee).

        Raises:
            ConfigurationError: for negative distances.
        """
        if added_distance < -1e-9:
            raise ConfigurationError(f"added_distance must be non-negative, got {added_distance}")
        if direct_distance < 0:
            raise ConfigurationError(f"direct_distance must be non-negative, got {direct_distance}")
        added = max(0.0, added_distance)
        return self.booking_fee + self.ratio(riders) * (added + direct_distance)

    def minimum_price(self, riders: int, direct_distance: float) -> float:
        """The lowest price any vehicle could offer (zero added distance).

        The matchers use this as an admissible price lower bound when pruning.
        """
        return self.price(riders, 0.0, direct_distance)
