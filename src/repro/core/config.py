"""Global system parameters.

Section 3.1 of the paper: "PTRider sets a global maximum waiting time and a
global service constraint", and the website interface (Section 4.2) lets an
administrator configure the taxi capacity, the number of taxis, the maximum
waiting time, the service constraint, the price calculator and the matching
algorithm.  :class:`SystemConfig` gathers those knobs so the dispatcher, the
service layer and the simulation engine share one source of truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.core.pricing import LinearPriceModel
from repro.errors import ConfigurationError
from repro.roadnet.routing import (
    DEFAULT_TABLE_MAX_VERTICES,
    ROUTING_BACKENDS,
    TREE_PROVIDERS,
)

__all__ = ["SystemConfig", "DEMO_SPEED_KMH"]

#: The constant speed assumed in the demonstration (48 km/h).
DEMO_SPEED_KMH = 48.0


@dataclass(frozen=True)
class SystemConfig:
    """Global PTRider parameters (the admin panel of Fig. 4(c)).

    Attributes:
        vehicle_capacity: seats per taxi.
        max_waiting: global maximum waiting time ``w`` applied to requests
            that do not specify their own, in distance units.
        service_constraint: global detour tolerance ``epsilon`` applied to
            requests that do not specify their own.
        speed: constant vehicle speed in distance units per time unit; used to
            convert between pick-up distances and pick-up times.
        max_pickup_distance: optional cap on the pick-up distance of returned
            options.  ``None`` reproduces Definition 4 literally (every
            non-dominated option, however far the vehicle); a finite value is
            what a deployment would use and lets the grid searches terminate
            early.
        matcher_name: which matching algorithm the service uses
            ("single_side", "dual_side" or "naive").
        price_model: the price calculator.
        routing_backend: which routing engine answers shortest-path queries
            ("dict", "csr", "csr+alt", "table" or "ch"; see
            :mod:`repro.roadnet.routing` -- "table" precomputes the all-pairs
            distance matrix, the right trade for city-benchmark networks up
            to a few thousand vertices; "ch" preprocesses a contraction
            hierarchy, the right trade for the larger networks the table
            refuses).
        table_max_vertices: vertex cap of the "table" backend; beyond it the
            all-pairs matrix (n^2 doubles) is refused rather than silently
            swallowing gigabytes, with "ch" recommended instead.
        tree_provider: how the "ch" backend computes full distance trees
            ("auto", "plane" or "phast"; see
            :data:`repro.roadnet.routing.TREE_PROVIDERS`).  "auto" picks the
            fastest correct path for the runtime environment, "plane" forces
            the CSR plane path and "phast" forces the hierarchy-native
            downward sweep -- the ablation knob of experiment E15.  Only
            "ch" has more than one tree path, so "phast" with any other
            backend is a configuration error at engine-build time.
        routing_cache_dir: directory persisted compiled routing artifacts
            (CSR compiles, ALT tables, distance tables, CH hierarchies) are
            kept in, keyed by a content hash of the network, so service
            restarts skip preprocessing.  ``None`` disables persistence.
        match_shards: number of fleet shards the batch dispatch pipeline
            partitions vehicles into (by grid cell); per-shard skylines are
            merged by dominance, so any value yields the same options.  ``1``
            disables sharding.
        dispatch_workers: worker processes the batch dispatch pipeline may
            fan the per-shard collect/verify stage out to (see
            :mod:`repro.core.parallel`).  Workers attach the engine's
            immutable arrays through shared memory, so results stay
            byte-identical to the sequential path at any value.  ``1``
            keeps everything in-process.
        batch_window: how long the serving path's micro-batcher
            (:class:`repro.service.ingest.MicroBatcher`) lets a window
            accumulate before flushing it through the batch pipeline, in
            the same time units as request submit times (simulated seconds
            under replay, wall seconds live).  A window closes when this
            much time has passed since its first admission *or* when it
            reaches ``max_batch_size``, whichever comes first.
        max_batch_size: request count that force-closes a micro-batch
            window early.
        queue_capacity: bound on requests the micro-batcher may hold
            admitted-but-unanswered (the current window plus any backlog).
            ``None`` means unbounded -- acceptable for offline replay,
            never for serving.  With a bound, admissions beyond capacity
            follow ``queue_policy``.
        queue_policy: what a full queue does with the next admission:
            "shed" refuses it (counted and reported; the caller sees an
            explicit rejection), "block" flushes the pending window inline
            to free capacity before admitting (trades admission latency
            for acceptance).  Either way the queue never grows beyond
            ``queue_capacity``.
        durability: whether (and how) the service persists its live state
            (see :mod:`repro.service.journal`): "off" keeps everything
            in memory (state evaporates on a crash), "journal" records
            every state-mutating event to a SQLite write-ahead journal so
            :meth:`~repro.service.api.PTRiderService.recover` can replay
            the full history, "journal+snapshot" additionally writes a
            periodic state snapshot every ``snapshot_interval`` journal
            records so recovery replays only the tail after the newest
            snapshot instead of the whole journal.
        journal_path: directory holding the durability journal (the SQLite
            WAL database plus the snapshot files).  Required when
            ``durability`` is not "off"; ignored otherwise.
        snapshot_interval: journal records between automatic snapshots
            under "journal+snapshot" (>= 1).  Smaller values bound
            recovery replay tighter at the cost of more snapshot writes.
        worker_timeout: wall seconds the parent waits on a dispatch worker's
            pipe before declaring it hung, killing it, and re-dispatching its
            work in-process (byte-identical fallback).  Turn replies double
            as the per-shard heartbeat, so this bounds how long a wedged
            worker can stall a batch.
        max_dispatch_retries: how many times a failed ``begin_batch`` is
            retried against a freshly spawned pool (with a short backoff)
            before the batch falls back in-process.  ``0`` disables retry.
        latency_budget: optional latency slack, in the same time units as
            ``batch_window``.  When set, the micro-batcher force-closes the
            pending window as soon as the oldest admission is within this
            budget of its deadline (``admit_time + max_waiting / speed``),
            so a long ``batch_window`` cannot silently blow a rider's
            deadline.  ``None`` disables the deadline-driven close.
        batch_window_mode: "fixed" keeps ``batch_window`` static;
            "adaptive" hands the window length to the ingest path's
            closed-loop controller
            (:class:`repro.service.ingest.WindowController`), which grows
            the window when flush walls crowd it (amortising dispatch
            cost) and shrinks it when dispatch idles (cutting p99),
            bounded by ``batch_window_min`` / ``batch_window_max`` and the
            ``latency_budget`` headroom.
        batch_window_min: adaptive-mode lower bound on the window length
            (``None`` derives ``batch_window / 16``).
        batch_window_max: adaptive-mode upper bound on the window length
            (``None`` derives ``batch_window * 16``).
        snapshot_mode: how the periodic snapshot cadence persists state
            under ``durability="journal+snapshot"``: "full" serialises the
            whole accumulated state at every cadence point (simple, but
            the stall grows with history); "incremental" writes cheap
            *delta* files holding only the partitions dirtied since the
            last snapshot point (bookings touched, vehicles moved, the
            counters) and demotes the full serialise to a periodic
            compaction that runs between ingest windows -- never inside a
            flush.  Recovery folds the delta chain over the last full
            snapshot (see :mod:`repro.service.recovery`).
        retention_horizon: optional age, in simulated time units, past
            which *fully served* bookings (chosen, picked up and dropped
            off) are pruned from live state -- and therefore from
            snapshots -- so a long-running service stops growing with
            history.  The journal stays authoritative; pruned bookings
            are counted in the ``retired`` conservation counter.  ``None``
            keeps every booking forever.
    """

    vehicle_capacity: int = 4
    max_waiting: float = 5.0
    service_constraint: float = 0.2
    speed: float = 1.0
    max_pickup_distance: Optional[float] = None
    matcher_name: str = "single_side"
    price_model: LinearPriceModel = field(default_factory=LinearPriceModel)
    routing_backend: str = "dict"
    table_max_vertices: int = DEFAULT_TABLE_MAX_VERTICES
    tree_provider: str = "auto"
    routing_cache_dir: Optional[str] = None
    match_shards: int = 1
    dispatch_workers: int = 1
    batch_window: float = 1.0
    max_batch_size: int = 512
    queue_capacity: Optional[int] = None
    queue_policy: str = "shed"
    durability: str = "off"
    journal_path: Optional[str] = None
    snapshot_interval: int = 1000
    worker_timeout: float = 30.0
    max_dispatch_retries: int = 1
    latency_budget: Optional[float] = None
    batch_window_mode: str = "fixed"
    batch_window_min: Optional[float] = None
    batch_window_max: Optional[float] = None
    snapshot_mode: str = "full"
    retention_horizon: Optional[float] = None

    _VALID_MATCHERS = ("single_side", "dual_side", "naive")
    _VALID_QUEUE_POLICIES = ("shed", "block")
    _VALID_DURABILITY = ("off", "journal", "journal+snapshot")
    _VALID_WINDOW_MODES = ("fixed", "adaptive")
    _VALID_SNAPSHOT_MODES = ("full", "incremental")

    def __post_init__(self) -> None:
        if self.vehicle_capacity < 1:
            raise ConfigurationError(f"vehicle_capacity must be >= 1, got {self.vehicle_capacity}")
        if self.max_waiting < 0:
            raise ConfigurationError(f"max_waiting must be non-negative, got {self.max_waiting}")
        if self.service_constraint < 0:
            raise ConfigurationError(
                f"service_constraint must be non-negative, got {self.service_constraint}"
            )
        if self.speed <= 0:
            raise ConfigurationError(f"speed must be positive, got {self.speed}")
        if self.max_pickup_distance is not None and self.max_pickup_distance <= 0:
            raise ConfigurationError(
                f"max_pickup_distance must be positive or None, got {self.max_pickup_distance}"
            )
        if self.matcher_name not in self._VALID_MATCHERS:
            raise ConfigurationError(
                f"matcher_name must be one of {self._VALID_MATCHERS}, got {self.matcher_name!r}"
            )
        if self.routing_backend not in ROUTING_BACKENDS:
            raise ConfigurationError(
                f"routing_backend must be one of {ROUTING_BACKENDS}, got {self.routing_backend!r}"
            )
        if self.table_max_vertices < 1:
            raise ConfigurationError(
                f"table_max_vertices must be >= 1, got {self.table_max_vertices}"
            )
        if self.tree_provider not in TREE_PROVIDERS:
            raise ConfigurationError(
                f"tree_provider must be one of {TREE_PROVIDERS}, got {self.tree_provider!r}"
            )
        if self.match_shards < 1:
            raise ConfigurationError(f"match_shards must be >= 1, got {self.match_shards}")
        if self.dispatch_workers < 1:
            raise ConfigurationError(
                f"dispatch_workers must be >= 1, got {self.dispatch_workers}"
            )
        if self.batch_window <= 0:
            raise ConfigurationError(
                f"batch_window must be positive, got {self.batch_window}"
            )
        if self.max_batch_size < 1:
            raise ConfigurationError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.queue_capacity is not None and self.queue_capacity < 1:
            raise ConfigurationError(
                f"queue_capacity must be >= 1 or None, got {self.queue_capacity}"
            )
        if self.queue_policy not in self._VALID_QUEUE_POLICIES:
            raise ConfigurationError(
                f"queue_policy must be one of {self._VALID_QUEUE_POLICIES}, "
                f"got {self.queue_policy!r}"
            )
        if self.durability not in self._VALID_DURABILITY:
            raise ConfigurationError(
                f"durability must be one of {self._VALID_DURABILITY}, "
                f"got {self.durability!r}"
            )
        if self.durability != "off" and not self.journal_path:
            raise ConfigurationError(
                f"durability={self.durability!r} requires journal_path to be set"
            )
        if self.snapshot_interval < 1:
            raise ConfigurationError(
                f"snapshot_interval must be >= 1, got {self.snapshot_interval}"
            )
        if self.worker_timeout <= 0:
            raise ConfigurationError(
                f"worker_timeout must be positive, got {self.worker_timeout}"
            )
        if self.max_dispatch_retries < 0:
            raise ConfigurationError(
                f"max_dispatch_retries must be >= 0, got {self.max_dispatch_retries}"
            )
        if self.latency_budget is not None and self.latency_budget <= 0:
            raise ConfigurationError(
                f"latency_budget must be positive or None, got {self.latency_budget}"
            )
        if self.batch_window_mode not in self._VALID_WINDOW_MODES:
            raise ConfigurationError(
                f"batch_window_mode must be one of {self._VALID_WINDOW_MODES}, "
                f"got {self.batch_window_mode!r}"
            )
        if self.batch_window_min is not None and self.batch_window_min <= 0:
            raise ConfigurationError(
                f"batch_window_min must be positive or None, got {self.batch_window_min}"
            )
        if self.batch_window_max is not None and self.batch_window_max <= 0:
            raise ConfigurationError(
                f"batch_window_max must be positive or None, got {self.batch_window_max}"
            )
        if (
            self.batch_window_min is not None
            and self.batch_window_max is not None
            and self.batch_window_min > self.batch_window_max
        ):
            raise ConfigurationError(
                f"batch_window_min ({self.batch_window_min}) must not exceed "
                f"batch_window_max ({self.batch_window_max})"
            )
        if self.snapshot_mode not in self._VALID_SNAPSHOT_MODES:
            raise ConfigurationError(
                f"snapshot_mode must be one of {self._VALID_SNAPSHOT_MODES}, "
                f"got {self.snapshot_mode!r}"
            )
        if self.retention_horizon is not None and self.retention_horizon <= 0:
            raise ConfigurationError(
                f"retention_horizon must be positive or None, got {self.retention_horizon}"
            )

    def with_updates(self, **changes: object) -> "SystemConfig":
        """Return a copy with the given fields replaced (admin panel edits)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    def distance_to_time(self, distance: float) -> float:
        """Convert a distance to a travel time at the configured speed."""
        return distance / self.speed

    def time_to_distance(self, time: float) -> float:
        """Convert a travel time to a distance at the configured speed."""
        return time * self.speed
