"""The request / options / choice cycle (Section 3.1) and the greedy strategy.

The dispatcher glues the matcher, the fleet and the price model together:

1. a rider submits a request (:meth:`Dispatcher.submit`);
2. the matcher returns the non-dominated options;
3. the rider picks one (or an :class:`OptionPolicy` picks automatically in
   simulations), and :meth:`Dispatcher.commit` installs the choice: the
   vehicle's kinetic tree is rebuilt with every schedule that remains valid
   after adding the request, the request becomes *waiting* on that vehicle,
   and the grid's vehicle lists are refreshed.

When several requests are issued simultaneously, PTRider applies a greedy
strategy (Section 2.5): requests are processed one after the other in
submission order, each seeing the fleet state left behind by its
predecessors; :meth:`Dispatcher.dispatch_batch` implements exactly that.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.config import SystemConfig
from repro.core.insertion import feasible_schedules_for_commit
from repro.core.matcher import Matcher
from repro.errors import MatchingError, NoMatchError, UnknownOptionError
from repro.model.options import RideOption
from repro.model.request import Request
from repro.vehicles.fleet import Fleet
from repro.vehicles.schedule import evaluate_schedule

__all__ = ["OptionPolicy", "DispatchOutcome", "Dispatcher"]


class OptionPolicy(enum.Enum):
    """Automatic option-selection policies used by simulations and examples.

    The demo lets a human pick; simulations need a stand-in rider.  The
    policies model the preference spectrum the paper motivates (cheapest ride
    versus earliest pick-up), plus a balanced compromise.
    """

    CHEAPEST = "cheapest"
    FASTEST = "fastest"
    BALANCED = "balanced"
    FIRST = "first"

    def choose(self, options: Sequence[RideOption]) -> RideOption:
        """Pick one option from a non-empty skyline.

        Raises:
            MatchingError: when ``options`` is empty.
        """
        if not options:
            raise MatchingError("cannot choose from an empty option list")
        if self is OptionPolicy.CHEAPEST:
            return min(options, key=lambda o: (o.price, o.pickup_distance, o.vehicle_id))
        if self is OptionPolicy.FASTEST:
            return min(options, key=lambda o: (o.pickup_distance, o.price, o.vehicle_id))
        if self is OptionPolicy.BALANCED:
            max_price = max(o.price for o in options) or 1.0
            max_pickup = max(o.pickup_distance for o in options) or 1.0
            return min(
                options,
                key=lambda o: (o.price / max_price + o.pickup_distance / max_pickup, o.vehicle_id),
            )
        return options[0]


@dataclass(frozen=True)
class DispatchOutcome:
    """What happened to one request."""

    request: Request
    options: Tuple[RideOption, ...]
    chosen: Optional[RideOption]
    match_seconds: float

    @property
    def matched(self) -> bool:
        """``True`` when the request received at least one option and accepted one."""
        return self.chosen is not None

    @property
    def option_count(self) -> int:
        """Number of non-dominated options offered."""
        return len(self.options)


class Dispatcher:
    """Coordinates matching, rider choice and fleet updates."""

    def __init__(self, fleet: Fleet, matcher: Matcher, config: Optional[SystemConfig] = None) -> None:
        self._fleet = fleet
        self._matcher = matcher
        self._config = config or matcher.config
        #: requests currently waiting or riding, keyed by id (for the service layer)
        self._active_requests: Dict[str, str] = {}

    @property
    def fleet(self) -> Fleet:
        """The fleet being dispatched."""
        return self._fleet

    @property
    def matcher(self) -> Matcher:
        """The matching algorithm in use."""
        return self._matcher

    @property
    def config(self) -> SystemConfig:
        """The global system parameters."""
        return self._config

    def vehicle_of_request(self, request_id: str) -> Optional[str]:
        """Return the vehicle currently serving ``request_id`` (``None`` when unknown)."""
        return self._active_requests.get(request_id)

    # ------------------------------------------------------------------
    # the three steps of Section 3.1
    # ------------------------------------------------------------------
    def normalise(self, request: Request) -> Request:
        """Apply the global waiting-time / service-constraint defaults.

        PTRider "sets a global maximum waiting time and a global service
        constraint" (Section 3.1); riders only supply locations and group
        size.  A request whose constraints already match the globals is
        returned unchanged.
        """
        if (
            request.max_waiting == self._config.max_waiting
            and request.service_constraint == self._config.service_constraint
        ):
            return request
        return Request(
            start=request.start,
            destination=request.destination,
            riders=request.riders,
            max_waiting=self._config.max_waiting,
            service_constraint=self._config.service_constraint,
            request_id=request.request_id,
            submit_time=request.submit_time,
        )

    def submit(self, request: Request) -> List[RideOption]:
        """Step (ii): return the qualified, non-dominated options for ``request``."""
        return self._matcher.match(request)

    def commit(self, request: Request, option: RideOption) -> None:
        """Step (iii): the rider chose ``option``; update vehicle and indexes.

        Raises:
            UnknownOptionError: when the option does not belong to the request
                or its vehicle can no longer serve it.
        """
        if option.request_id and option.request_id != request.request_id:
            raise UnknownOptionError(
                f"option for request {option.request_id} cannot serve {request.request_id}"
            )
        vehicle = self._fleet.get(option.vehicle_id)
        schedules = feasible_schedules_for_commit(vehicle, request, self._fleet.oracle, self._fleet.grid)
        # The accepted option fixes the rider's *planned* pick-up; from now on
        # the waiting-time condition (Definition 2, condition 3) applies to the
        # new request too, so schedules that would already pick the rider up
        # more than ``w`` later than promised are not valid branches.
        schedules = self._filter_by_promised_pickup(vehicle, request, option, schedules)
        if not schedules:
            raise UnknownOptionError(
                f"vehicle {option.vehicle_id} can no longer serve request {request.request_id}"
            )
        if option.schedule and tuple(option.schedule) not in {tuple(s) for s in schedules}:
            # The fleet state moved on since the option was computed (another
            # rider's commit, a location update); the promise can no longer be
            # kept exactly, so refuse rather than silently degrade.
            raise UnknownOptionError(
                f"the chosen schedule of vehicle {option.vehicle_id} is no longer feasible"
            )
        direct = self._fleet.oracle.distance(request.start, request.destination)
        vehicle.assign(
            request,
            planned_pickup_distance=option.pickup_distance,
            direct_distance=direct,
            schedules=schedules,
        )
        self._fleet.refresh_vehicle(vehicle.vehicle_id)
        self._active_requests[request.request_id] = vehicle.vehicle_id

    def _filter_by_promised_pickup(self, vehicle, request, option, schedules):
        """Keep only schedules honouring the promised pick-up within ``w``."""
        budget = option.pickup_distance + request.max_waiting + 1e-9
        oracle = self._fleet.oracle
        kept = []
        for schedule in schedules:
            metrics = evaluate_schedule(vehicle.location, schedule, oracle.distance, vehicle.offset)
            if metrics.pickup_distance[request.request_id] <= budget:
                kept.append(schedule)
        return kept

    # ------------------------------------------------------------------
    # automatic dispatch (simulation / examples)
    # ------------------------------------------------------------------
    def dispatch(
        self,
        request: Request,
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        apply_global_constraints: bool = True,
    ) -> DispatchOutcome:
        """Submit, auto-choose and commit one request.

        Returns a :class:`DispatchOutcome`; a request with no qualifying
        option is reported unmatched rather than raising.
        """
        if apply_global_constraints:
            request = self.normalise(request)
        started = time.perf_counter()
        options = self.submit(request)
        elapsed = time.perf_counter() - started
        if not options:
            return DispatchOutcome(request=request, options=(), chosen=None, match_seconds=elapsed)
        chosen = policy.choose(options)
        self.commit(request, chosen)
        return DispatchOutcome(
            request=request, options=tuple(options), chosen=chosen, match_seconds=elapsed
        )

    def dispatch_batch(
        self,
        requests: Iterable[Request],
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        apply_global_constraints: bool = True,
    ) -> List[DispatchOutcome]:
        """Greedy handling of simultaneous requests (Section 2.5).

        Requests are processed in the given order; each sees the fleet state
        produced by its predecessors' commits.
        """
        return [
            self.dispatch(request, policy=policy, apply_global_constraints=apply_global_constraints)
            for request in requests
        ]

    # ------------------------------------------------------------------
    # lifecycle notifications from the simulation engine
    # ------------------------------------------------------------------
    def notify_pickup(self, vehicle_id: str, request_id: str) -> None:
        """Record that ``request_id`` boarded ``vehicle_id`` (index refresh)."""
        vehicle = self._fleet.get(vehicle_id)
        vehicle.pickup(request_id)
        self._fleet.refresh_vehicle(vehicle_id)

    def notify_dropoff(self, vehicle_id: str, request_id: str) -> None:
        """Record that ``request_id`` alighted from ``vehicle_id`` (index refresh)."""
        vehicle = self._fleet.get(vehicle_id)
        vehicle.dropoff(request_id)
        self._fleet.refresh_vehicle(vehicle_id)
        self._active_requests.pop(request_id, None)
