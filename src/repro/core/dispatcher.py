"""The request / options / choice cycle (Section 3.1) and the greedy strategy.

The dispatcher glues the matcher, the fleet and the price model together:

1. a rider submits a request (:meth:`Dispatcher.submit`);
2. the matcher returns the non-dominated options;
3. the rider picks one (or an :class:`OptionPolicy` picks automatically in
   simulations), and :meth:`Dispatcher.commit` installs the choice: the
   vehicle's kinetic tree is rebuilt with every schedule that remains valid
   after adding the request, the request becomes *waiting* on that vehicle,
   and the grid's vehicle lists are refreshed.

When several requests are issued simultaneously, PTRider applies a greedy
strategy (Section 2.5): requests are processed one after the other in
submission order, each seeing the fleet state left behind by its
predecessors.  :meth:`Dispatcher.dispatch_batch` preserves exactly those
semantics but runs them as a staged pipeline instead of a literal loop:

1. **normalise** every request of the batch;
2. **build a** :class:`~repro.core.batch.BatchContext` pooling the
   start-rooted distance trees and direct distances (requests sharing a start
   vertex share one tree);
3. **collect per-shard skylines**: the fleet is partitioned into
   ``SystemConfig.match_shards`` disjoint
   :class:`~repro.vehicles.fleet.ShardedFleetView`\\ s and the matcher
   verifies each shard independently;
4. **merge** the per-shard skylines by dominance
   (:meth:`~repro.model.options.Skyline.merge`);
5. **greedily commit** in submission order -- a commit changes exactly one
   vehicle and therefore the contents of exactly one shard, which is what
   keeps every other shard's search results valid under the interleaved
   commits; each request's per-shard skylines are computed just-in-time at
   its turn, every shard searched exactly once per request.

Every pruning and merge step is lossless and deterministic, so the pipeline
yields byte-identical options, choices and fleet end-state to the sequential
loop for any shard count (property-tested in
``tests/property/test_batch_equivalence.py``).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.batch import BatchContext, BatchStatistics
from repro.core.config import SystemConfig
from repro.core.insertion import feasible_schedules_for_commit
from repro.core.matcher import Matcher
from repro.core.parallel import ParallelDispatchPool
from repro.errors import MatchingError, NoMatchError, UnknownOptionError
from repro.model.options import RideOption, Skyline
from repro.model.request import Request
from repro.roadnet.graph import VertexId
from repro.vehicles.fleet import Fleet
from repro.vehicles.schedule import evaluate_schedule

__all__ = ["OptionPolicy", "DispatchOutcome", "DispatchHealth", "Dispatcher"]

#: consecutive batch failures that open the circuit breaker (module-level so
#: tests can tighten it; only ``worker_timeout`` / ``max_dispatch_retries``
#: are per-config knobs)
BREAKER_THRESHOLD = 3

#: seconds an open breaker holds before a half-open re-probe is allowed
BREAKER_COOLDOWN_SECONDS = 30.0

#: base backoff before a dispatch retry (multiplied by the attempt number)
RETRY_BACKOFF_SECONDS = 0.05


@dataclass
class DispatchHealth:
    """Failure-containment counters of one dispatcher.

    Tracks the worker watchdog and the pool circuit breaker:
    ``closed`` -> (``BREAKER_THRESHOLD`` consecutive batch failures) ->
    ``open`` -> (cooldown elapses) -> ``half_open`` -> one probe batch ->
    ``closed`` on success / back to ``open`` on failure.  While open, no
    pool is spawned and every batch runs in-process -- a persistently sick
    environment stops paying spawn costs, without giving up on recovery.
    Surfaced (``dispatch_``-prefixed) through
    :meth:`repro.service.api.PTRiderService.routing_statistics`.
    """

    #: workers forcibly killed (watchdog expiries and close escalations)
    worker_kills: int = 0
    #: reply waits that hit ``worker_timeout`` (each kills the hung worker)
    worker_timeouts: int = 0
    #: broken pools replaced by a freshly spawned one
    pool_respawns: int = 0
    #: batches (or begin attempts) a pool failed to serve
    batch_failures: int = 0
    #: failed ``begin_batch`` attempts retried against a fresh pool
    dispatch_retries: int = 0
    #: times the breaker tripped open (including half-open re-trips)
    breaker_opens: int = 0
    #: current run of batch failures without an intervening success
    consecutive_failures: int = 0
    #: "closed", "open" or "half_open"
    breaker_state: str = "closed"
    #: ``time.monotonic()`` of the most recent trip (cooldown anchor)
    opened_at: float = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Counters as floats plus the breaker state string (stats panels)."""
        return {
            "worker_kills": float(self.worker_kills),
            "worker_timeouts": float(self.worker_timeouts),
            "pool_respawns": float(self.pool_respawns),
            "batch_failures": float(self.batch_failures),
            "dispatch_retries": float(self.dispatch_retries),
            "breaker_opens": float(self.breaker_opens),
            "consecutive_failures": float(self.consecutive_failures),
            "breaker_state": self.breaker_state,
        }


class OptionPolicy(enum.Enum):
    """Automatic option-selection policies used by simulations and examples.

    The demo lets a human pick; simulations need a stand-in rider.  The
    policies model the preference spectrum the paper motivates (cheapest ride
    versus earliest pick-up), plus a balanced compromise.
    """

    CHEAPEST = "cheapest"
    FASTEST = "fastest"
    BALANCED = "balanced"
    FIRST = "first"

    def choose(self, options: Sequence[RideOption]) -> RideOption:
        """Pick one option from a non-empty skyline.

        Raises:
            MatchingError: when ``options`` is empty.
        """
        if not options:
            raise MatchingError("cannot choose from an empty option list")
        if self is OptionPolicy.CHEAPEST:
            return min(options, key=lambda o: (o.price, o.pickup_distance, o.vehicle_id))
        if self is OptionPolicy.FASTEST:
            return min(options, key=lambda o: (o.pickup_distance, o.price, o.vehicle_id))
        if self is OptionPolicy.BALANCED:
            # Normalise each axis independently, with an explicit zero check
            # per axis: when every option ties at 0.0 on one axis (e.g. all
            # prices are 0.0 but pick-ups differ), that axis contributes
            # nothing and the other axis alone decides -- instead of a
            # truthiness guard silently rescaling one axis against the other.
            max_price = max(o.price for o in options)
            max_pickup = max(o.pickup_distance for o in options)

            def balanced_cost(option: RideOption) -> float:
                price_term = option.price / max_price if max_price > 0.0 else 0.0
                pickup_term = (
                    option.pickup_distance / max_pickup if max_pickup > 0.0 else 0.0
                )
                return price_term + pickup_term

            return min(options, key=lambda o: (balanced_cost(o), o.vehicle_id))
        return options[0]


@dataclass(frozen=True)
class DispatchOutcome:
    """What happened to one request."""

    request: Request
    options: Tuple[RideOption, ...]
    chosen: Optional[RideOption]
    match_seconds: float
    #: the request's direct distance ``dist(s, d)``, carried from the match
    #: context so consumers (e.g. the simulation statistics) need not
    #: re-query the routing engine
    direct_distance: float = 0.0

    @property
    def matched(self) -> bool:
        """``True`` when the request received at least one option and accepted one."""
        return self.chosen is not None

    @property
    def option_count(self) -> int:
        """Number of non-dominated options offered."""
        return len(self.options)


class Dispatcher:
    """Coordinates matching, rider choice and fleet updates."""

    def __init__(self, fleet: Fleet, matcher: Matcher, config: Optional[SystemConfig] = None) -> None:
        self._fleet = fleet
        self._matcher = matcher
        self._config = config or matcher.config
        #: requests currently waiting or riding, keyed by id (for the service layer)
        self._active_requests: Dict[str, str] = {}
        #: shared-tree statistics of the most recent batch call (CLI / benchmarks)
        self.last_batch_statistics: Optional[BatchStatistics] = None
        #: lazy shared-memory worker pool for parallel shard execution
        self._pool: Optional[ParallelDispatchPool] = None
        #: (engine id, workers, matcher) combination that failed to start --
        #: remembered so every batch does not re-pay a doomed spawn attempt
        self._pool_disabled_token: Optional[Tuple[int, int, str]] = None
        #: optional observer invoked with every committed outcome (single
        #: and batch paths alike) -- the durability journal's annotation
        #: hook; unlike ``on_outcome`` it is attached once, not per call
        self.outcome_listener: Optional[Callable[[DispatchOutcome], None]] = None
        #: watchdog / breaker / retry counters (failure containment)
        self.health = DispatchHealth()

    @property
    def fleet(self) -> Fleet:
        """The fleet being dispatched."""
        return self._fleet

    @property
    def matcher(self) -> Matcher:
        """The matching algorithm in use."""
        return self._matcher

    @property
    def config(self) -> SystemConfig:
        """The global system parameters."""
        return self._config

    def vehicle_of_request(self, request_id: str) -> Optional[str]:
        """Return the vehicle currently serving ``request_id`` (``None`` when unknown)."""
        return self._active_requests.get(request_id)

    # ------------------------------------------------------------------
    # the three steps of Section 3.1
    # ------------------------------------------------------------------
    def normalise(self, request: Request) -> Request:
        """Apply the global waiting-time / service-constraint defaults.

        PTRider "sets a global maximum waiting time and a global service
        constraint" (Section 3.1); riders only supply locations and group
        size.  A request whose constraints already match the globals is
        returned unchanged.
        """
        if (
            request.max_waiting == self._config.max_waiting
            and request.service_constraint == self._config.service_constraint
        ):
            return request
        return Request(
            start=request.start,
            destination=request.destination,
            riders=request.riders,
            max_waiting=self._config.max_waiting,
            service_constraint=self._config.service_constraint,
            request_id=request.request_id,
            submit_time=request.submit_time,
        )

    def submit(self, request: Request) -> List[RideOption]:
        """Step (ii): return the qualified, non-dominated options for ``request``."""
        return self._matcher.match(request)

    def commit(
        self, request: Request, option: RideOption, direct: Optional[float] = None
    ) -> None:
        """Step (iii): the rider chose ``option``; update vehicle and indexes.

        Args:
            request: the request being committed.
            option: the option the rider accepted.
            direct: the request's direct distance when the caller already
                holds it (``dispatch``/``dispatch_batch`` pass the match
                context's value so the routing engine is not re-queried);
                recomputed through the fleet's routing engine otherwise.

        Raises:
            UnknownOptionError: when the option does not belong to the request
                or its vehicle can no longer serve it.
        """
        if option.request_id and option.request_id != request.request_id:
            raise UnknownOptionError(
                f"option for request {option.request_id} cannot serve {request.request_id}"
            )
        engine = self._fleet.routing_engine
        vehicle = self._fleet.get(option.vehicle_id)
        schedules = feasible_schedules_for_commit(vehicle, request, engine, self._fleet.grid)
        # The accepted option fixes the rider's *planned* pick-up; from now on
        # the waiting-time condition (Definition 2, condition 3) applies to the
        # new request too, so schedules that would already pick the rider up
        # more than ``w`` later than promised are not valid branches.
        schedules = self._filter_by_promised_pickup(vehicle, request, option, schedules)
        if not schedules:
            raise UnknownOptionError(
                f"vehicle {option.vehicle_id} can no longer serve request {request.request_id}"
            )
        if option.schedule and tuple(option.schedule) not in {tuple(s) for s in schedules}:
            # The fleet state moved on since the option was computed (another
            # rider's commit, a location update); the promise can no longer be
            # kept exactly, so refuse rather than silently degrade.
            raise UnknownOptionError(
                f"the chosen schedule of vehicle {option.vehicle_id} is no longer feasible"
            )
        if direct is None:
            direct = engine.distance(request.start, request.destination)
        vehicle.assign(
            request,
            planned_pickup_distance=option.pickup_distance,
            direct_distance=direct,
            schedules=schedules,
        )
        self._fleet.refresh_vehicle(vehicle.vehicle_id)
        self._active_requests[request.request_id] = vehicle.vehicle_id

    def _filter_by_promised_pickup(self, vehicle, request, option, schedules):
        """Keep only schedules honouring the promised pick-up within ``w``."""
        budget = option.pickup_distance + request.max_waiting + 1e-9
        engine = self._fleet.routing_engine
        kept = []
        for schedule in schedules:
            metrics = evaluate_schedule(vehicle.location, schedule, engine.distance, vehicle.offset)
            if metrics.pickup_distance[request.request_id] <= budget:
                kept.append(schedule)
        return kept

    # ------------------------------------------------------------------
    # automatic dispatch (simulation / examples)
    # ------------------------------------------------------------------
    def dispatch(
        self,
        request: Request,
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        apply_global_constraints: bool = True,
    ) -> DispatchOutcome:
        """Submit, auto-choose and commit one request.

        Returns a :class:`DispatchOutcome`; a request with no qualifying
        option is reported unmatched rather than raising.
        """
        if apply_global_constraints:
            request = self.normalise(request)
        started = time.perf_counter()
        context = self._matcher.make_context(request)
        options = self._matcher.match_context(context)
        elapsed = time.perf_counter() - started
        if not options:
            outcome = DispatchOutcome(
                request=request,
                options=(),
                chosen=None,
                match_seconds=elapsed,
                direct_distance=context.direct,
            )
            if self.outcome_listener is not None:
                self.outcome_listener(outcome)
            return outcome
        chosen = policy.choose(options)
        self.commit(request, chosen, direct=context.direct)
        outcome = DispatchOutcome(
            request=request,
            options=tuple(options),
            chosen=chosen,
            match_seconds=elapsed,
            direct_distance=context.direct,
        )
        if self.outcome_listener is not None:
            self.outcome_listener(outcome)
        return outcome

    def dispatch_sequential(
        self,
        requests: Iterable[Request],
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        apply_global_constraints: bool = True,
    ) -> List[DispatchOutcome]:
        """The literal request-by-request greedy loop (Section 2.5).

        Kept as the correctness reference the batched pipeline is
        property-tested against, and as the sequential arm of the
        batched-vs-sequential benchmark (E12).
        """
        return [
            self.dispatch(request, policy=policy, apply_global_constraints=apply_global_constraints)
            for request in requests
        ]

    def dispatch_batch(
        self,
        requests: Iterable[Request],
        policy: OptionPolicy = OptionPolicy.CHEAPEST,
        apply_global_constraints: bool = True,
        shards: Optional[int] = None,
        on_outcome: Optional[Callable[[DispatchOutcome], None]] = None,
        prefetch: bool = True,
        workers: Optional[int] = None,
        prefetch_legs: bool = False,
    ) -> List[DispatchOutcome]:
        """Greedy handling of simultaneous requests as a staged pipeline.

        Semantically identical to :meth:`dispatch_sequential` -- requests are
        decided in submission order, each seeing the fleet state its
        predecessors' commits produced -- but the work is staged: the batch's
        distinct start trees are prefetched in one vectorised engine call,
        routing contexts are pooled batch-wide (shared start trees plus a
        batch-wide schedule-leg memo), matching runs per fleet shard and the
        per-shard skylines are merged by dominance.  A commit affects exactly
        one shard (the chosen vehicle's), which is what keeps the per-shard
        searches of every other shard valid under the interleaved commits;
        each request's shard skylines are computed just-in-time at its turn,
        so no shard is ever searched twice for the same request.

        Args:
            requests: the simultaneous requests, in submission order.
            policy: the stand-in rider choosing from each skyline.
            apply_global_constraints: normalise requests first (Section 3.1).
            shards: shard-count override; defaults to
                ``SystemConfig.match_shards``.
            on_outcome: optional callback invoked with each outcome as soon
                as its commit lands -- callers that must record bookkeeping
                even when a *later* request of the batch raises (e.g. the
                simulation engine) hook in here, exactly as if they had run
                the sequential loop themselves.
            prefetch: pool the batch's start trees through one vectorised
                :meth:`~repro.roadnet.routing.RoutingEngine.prefetch_trees`
                call (the default; ``False`` forces per-start computation,
                the ablation arm of benchmark E13).
            workers: worker-process override for the collect/verify stage;
                defaults to ``SystemConfig.dispatch_workers``.  Values above
                1 fan the per-shard searches out to a shared-memory worker
                pool (:mod:`repro.core.parallel`); merge + commit always
                stay on this process, so outcomes are byte-identical at any
                worker count, and any pool failure falls back to in-process
                execution mid-batch without changing a single option.
            prefetch_legs: fold the fleet's leg sources (vehicle locations
                plus committed schedule stops) into the prefetch plane so
                schedule-leg verification queries are answered from pinned
                rows instead of cold single-source trees.  Off by default:
                the plane costs one tree per fleet-side source, which only
                amortises when the window carries many requests relative to
                the fleet -- the micro-batched serving path
                (:class:`repro.service.ingest.MicroBatcher`) turns it on.
                Purely a performance hint; outcomes are byte-identical
                either way.
        """
        prepared = self._prepare_batch(
            requests, apply_global_constraints, shards, prefetch, prefetch_legs
        )
        if prepared is None:
            return []
        request_list, batch, views = prepared
        shard_count = len(views)
        worker_count = workers if workers is not None else self._config.dispatch_workers

        pool = self._acquire_pool(worker_count)
        watchdog_before = (0, 0)
        if pool is not None:
            watchdog_before = (pool.worker_kills, pool.worker_timeouts)
            if not pool.begin_batch(request_list, batch, shard_count, self._fleet):
                # Shipping failed: charge the failure, retry against a fresh
                # pool (transient failures -- a killed worker, a flaky spawn
                # -- usually clear), else the whole batch runs in-process.
                self._fold_pool_watchdog(pool, watchdog_before)
                self._record_batch_failure()
                pool = self._retry_begin_batch(request_list, batch, shard_count, worker_count)
                if pool is not None:
                    watchdog_before = (pool.worker_kills, pool.worker_timeouts)
        statistics = batch.statistics
        ipc_before = pool.ipc_seconds if pool is not None else 0.0
        if pool is not None:
            statistics.parallel_workers = pool.workers
        shard_walls = [0.0] * shard_count

        # Stage: per-shard collect/verify + merge + greedy commit, in
        # submission order.
        outcomes: List[DispatchOutcome] = []
        try:
            for index, request in enumerate(request_list):
                context = batch.context_for(index)  # re-raises recorded errors
                started = time.perf_counter()
                remote = pool.collect(index) if pool is not None else None
                if remote is not None:
                    shard_skylines = [remote[shard][0] for shard in range(shard_count)]
                    for shard in range(shard_count):
                        shard_walls[shard] += remote[shard][1]
                else:
                    # In-process path -- also the mid-batch fallback after a
                    # pool failure: the parent fleet carries every commit, so
                    # local collection answers identically.
                    shard_skylines = [
                        self._matcher.collect_shard(context, view) for view in views
                    ]
                merged = Skyline.merge(shard_skylines).options()
                # The request's share of the pooled context building counts
                # towards its response time, as it did when ``dispatch`` built
                # the context inline.
                elapsed = batch.context_seconds(index) + (time.perf_counter() - started)
                self._matcher.statistics.requests_answered += 1
                self._matcher.statistics.options_returned += len(merged)
                if merged:
                    chosen = policy.choose(merged)
                    self.commit(request, chosen, direct=context.direct)
                    if pool is not None:
                        pool.mark_dirty(self._fleet, self._fleet.get(chosen.vehicle_id))
                    outcome = DispatchOutcome(
                        request=request,
                        options=tuple(merged),
                        chosen=chosen,
                        match_seconds=elapsed,
                        direct_distance=context.direct,
                    )
                else:
                    outcome = DispatchOutcome(
                        request=request,
                        options=(),
                        chosen=None,
                        match_seconds=elapsed,
                        direct_distance=context.direct,
                    )
                batch.release(index)  # free the pooled tree once the turn is over
                outcomes.append(outcome)
                if self.outcome_listener is not None:
                    self.outcome_listener(outcome)
                if on_outcome is not None:
                    on_outcome(outcome)
        finally:
            if pool is not None:
                # Always fold worker counters back and drop the per-batch
                # plane segment, even when a mid-batch error propagates.
                pool.finish_batch(self._matcher.statistics, self._fleet.routing_engine.stats)
                statistics.ipc_seconds = pool.ipc_seconds - ipc_before
                statistics.shard_wall_seconds = tuple(shard_walls)
                self._fold_pool_watchdog(pool, watchdog_before)
                if pool.broken:
                    self._record_batch_failure()
                else:
                    self._record_batch_success()
        return outcomes

    def _prepare_batch(
        self,
        requests: Iterable[Request],
        apply_global_constraints: bool,
        shards: Optional[int],
        prefetch: bool = True,
        prefetch_legs: bool = False,
    ) -> Optional[Tuple[List[Request], BatchContext, List[object]]]:
        """Shared batch prelude: normalise, validate shards, pool contexts.

        Returns ``None`` for an empty batch.
        """
        request_list = list(requests)
        if apply_global_constraints:
            request_list = [self.normalise(request) for request in request_list]
        if not request_list:
            return None
        shard_count = shards if shards is not None else self._config.match_shards
        if shard_count < 1:
            raise MatchingError(f"shard count must be >= 1, got {shard_count}")
        if not self._matcher.supports_sharding:
            shard_count = 1
        leg_sources: Optional[List[VertexId]] = None
        if prefetch_legs and prefetch:
            leg_sources = []
            for vehicle in self._fleet.vehicles():
                leg_sources.append(vehicle.location)
                leg_sources.extend(vehicle.kinetic_tree.stop_vertices())
        batch = BatchContext.create(
            request_list,
            self._fleet.routing_engine,
            self._fleet.grid,
            prefetch=prefetch,
            leg_sources=leg_sources,
        )
        self.last_batch_statistics = batch.statistics
        return request_list, batch, self._fleet.shard_views(shard_count)

    def match_batch(
        self,
        requests: Iterable[Request],
        apply_global_constraints: bool = True,
        shards: Optional[int] = None,
        on_error: str = "raise",
        prefetch: bool = True,
    ) -> List[List[RideOption]]:
        """Skylines for a batch of requests without committing any of them.

        The service layer's batch-submit flow uses this: all requests are
        answered against the *current* fleet state through one shared
        :class:`~repro.core.batch.BatchContext` (the riders choose -- and
        commit -- later, individually).

        Args:
            requests: the requests to answer, in order.
            apply_global_constraints: normalise requests first.
            shards: shard-count override (defaults to the config's).
            on_error: what a recorded endpoint error (unknown vertex,
                unreachable destination) does to its request: ``"raise"``
                (per-request ``submit`` parity) or ``"empty"`` -- the request
                simply gets no options, so one broken trip cannot void the
                rest of the burst (the service's batch-submit flow uses
                this).
            prefetch: pool the batch's start trees through one vectorised
                engine call (see :meth:`dispatch_batch`).
        """
        if on_error not in ("raise", "empty"):
            raise MatchingError(f"on_error must be 'raise' or 'empty', got {on_error!r}")
        prepared = self._prepare_batch(requests, apply_global_constraints, shards, prefetch)
        if prepared is None:
            return []
        request_list, batch, views = prepared
        results: List[List[RideOption]] = []
        for index in range(len(request_list)):
            if on_error == "empty" and batch.error_for(index) is not None:
                results.append([])
                continue
            context = batch.context_for(index)
            merged = Skyline.merge(
                self._matcher.collect_shard(context, view) for view in views
            ).options()
            self._matcher.statistics.requests_answered += 1
            self._matcher.statistics.options_returned += len(merged)
            results.append(merged)
        return results

    # ------------------------------------------------------------------
    # parallel worker-pool lifecycle
    # ------------------------------------------------------------------
    def _acquire_pool(self, worker_count: int) -> Optional[ParallelDispatchPool]:
        """A started pool for ``worker_count`` workers, or ``None`` to run in-process.

        Pools are lazy (first parallel batch spawns), keyed on the engine
        identity, the worker count and the matcher (any change retires the
        old pool), torn down after sitting idle past their timeout, and
        replaced after a failure.  A combination that failed to *start* is
        remembered and not retried, so an environment without shared-memory
        support pays the probe exactly once.

        The circuit breaker gates everything: while *open* (and inside the
        cooldown) no pool is offered, so a persistently failing environment
        stops paying spawn attempts; once the cooldown elapses the breaker
        goes *half-open* and exactly the next batch probes a fresh pool.
        """
        if worker_count <= 1 or not self._matcher.supports_sharding:
            self._expire_idle_pool()
            return None
        health = self.health
        if health.breaker_state == "open":
            if time.monotonic() - health.opened_at < BREAKER_COOLDOWN_SECONDS:
                self._expire_idle_pool()
                return None
            health.breaker_state = "half_open"
        engine = self._fleet.routing_engine
        token = (id(engine), worker_count, self._matcher.name)
        pool = self._pool
        respawn = False
        if pool is not None and (
            pool.broken
            or pool.workers != worker_count
            or pool.engine_token != id(engine)
            or time.monotonic() - pool.last_used > pool.idle_timeout
        ):
            respawn = pool.broken
            pool.close()
            self._pool = pool = None
        if pool is None:
            if token == self._pool_disabled_token:
                return None
            pool = ParallelDispatchPool(
                engine,
                self._fleet.grid,
                self._matcher.config,
                self._matcher.name,
                self._matcher.price_model,
                worker_count,
                worker_timeout=self._config.worker_timeout,
            )
            if not pool.ensure_started():
                pool.close()
                self._pool_disabled_token = token
                return None
            if respawn:
                health.pool_respawns += 1
            self._pool = pool
        return pool

    def _retry_begin_batch(
        self,
        request_list: List[Request],
        batch: BatchContext,
        shard_count: int,
        worker_count: int,
    ) -> Optional[ParallelDispatchPool]:
        """Retry a failed ``begin_batch`` against freshly spawned pools.

        Up to ``SystemConfig.max_dispatch_retries`` attempts, each after a
        short linear backoff; the broken pool is replaced by
        :meth:`_acquire_pool` (which also respects the breaker -- a failure
        that tripped it open stops the retries immediately).  Returns the
        pool that accepted the batch, or ``None`` to run in-process.
        """
        health = self.health
        for attempt in range(max(0, self._config.max_dispatch_retries)):
            time.sleep(RETRY_BACKOFF_SECONDS * (attempt + 1))
            pool = self._acquire_pool(worker_count)
            if pool is None:
                break
            health.dispatch_retries += 1
            watchdog_before = (pool.worker_kills, pool.worker_timeouts)
            if pool.begin_batch(request_list, batch, shard_count, self._fleet):
                return pool
            self._fold_pool_watchdog(pool, watchdog_before)
            self._record_batch_failure()
        return None

    def _fold_pool_watchdog(
        self, pool: ParallelDispatchPool, before: Tuple[int, int]
    ) -> None:
        """Accumulate a pool's watchdog counters (delta since ``before``)."""
        self.health.worker_kills += pool.worker_kills - before[0]
        self.health.worker_timeouts += pool.worker_timeouts - before[1]

    def _record_batch_failure(self) -> None:
        """One failed pooled batch (or begin attempt): maybe trip the breaker.

        A failure in *half-open* re-trips immediately -- the probe batch is
        the re-closing condition, so its failure proves the environment is
        still sick.
        """
        health = self.health
        health.batch_failures += 1
        health.consecutive_failures += 1
        if (
            health.breaker_state == "half_open"
            or health.consecutive_failures >= BREAKER_THRESHOLD
        ):
            if health.breaker_state != "open":
                health.breaker_opens += 1
            health.breaker_state = "open"
            health.opened_at = time.monotonic()

    def _record_batch_success(self) -> None:
        """One pooled batch served cleanly: reset the failure run, close the breaker."""
        health = self.health
        health.consecutive_failures = 0
        health.breaker_state = "closed"

    def _expire_idle_pool(self) -> None:
        """Tear down a pool that broke or sat unused past its idle timeout."""
        pool = self._pool
        if pool is not None and (
            pool.broken or time.monotonic() - pool.last_used > pool.idle_timeout
        ):
            pool.close()
            self._pool = None

    def close(self) -> None:
        """Release the parallel worker pool, if one is running (idempotent).

        Joins the worker processes and unlinks every shared-memory segment;
        the dispatcher itself remains fully usable (a later parallel batch
        simply spawns a fresh pool).
        """
        if self._pool is not None:
            self._pool.close()
            self._pool = None

    # ------------------------------------------------------------------
    # lifecycle notifications from the simulation engine
    # ------------------------------------------------------------------
    def notify_pickup(self, vehicle_id: str, request_id: str) -> None:
        """Record that ``request_id`` boarded ``vehicle_id`` (index refresh)."""
        vehicle = self._fleet.get(vehicle_id)
        vehicle.pickup(request_id)
        self._fleet.refresh_vehicle(vehicle_id)

    def notify_dropoff(self, vehicle_id: str, request_id: str) -> None:
        """Record that ``request_id`` alighted from ``vehicle_id`` (index refresh)."""
        vehicle = self._fleet.get(vehicle_id)
        vehicle.dropoff(request_id)
        self._fleet.refresh_vehicle(vehicle_id)
        self._active_requests.pop(request_id, None)
