"""Per-request matching context.

A :class:`MatchContext` is created once at the top of every
:meth:`repro.core.matcher.Matcher.match` call and threaded through the whole
verification pipeline.  It pins the resources every candidate-vehicle
verification shares:

* the (normalised) request itself;
* the request's direct distance ``dist(s, d)``, computed exactly once;
* the request-rooted single-source distance tree, held by reference so it can
  never be evicted from the routing engine's cache mid-match -- this is what
  eliminates the per-vehicle ``oracle.distance(request.start, ...)`` re-query
  the matchers used to issue.  The tree is whatever mapping the engine hands
  out: a plain dict (dict backend) or a zero-copy ndarray-row view (CSR /
  table / ch backends, possibly pooled batch-wide by a vectorised prefetch).
  Which :class:`~repro.roadnet.routing.TreeProvider` computed the row --
  SciPy plane, pure-Python Dijkstra, or the ch backend's PHAST sweep -- is
  invisible here by design: every provider's rows are bit-identical, so the
  context (and everything downstream of it) is provider-oblivious;
* the combined admissible lower bound (grid cell bounds plus the engine's
  optional ALT landmark bounds).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import DisconnectedError
from repro.model.request import Request
from repro.roadnet.graph import VertexId
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import RoutingEngine

__all__ = ["MatchContext"]


@dataclass
class MatchContext:
    """Everything one ``match`` call shares across its vehicle verifications."""

    request: Request
    engine: RoutingEngine
    grid: GridIndex
    #: exact direct distance ``dist(request.start, request.destination)``
    direct: float
    #: the full distance tree rooted at ``request.start`` (shared reference)
    start_tree: Mapping[VertexId, float]

    @classmethod
    def create(cls, request: Request, engine: RoutingEngine, grid: GridIndex) -> "MatchContext":
        """Build the context: one tree computation, one direct-distance lookup.

        Raises:
            VertexNotFoundError: if the request's endpoints are unknown.
            DisconnectedError: if the destination is unreachable from the start.
        """
        start_tree = engine.distances_from(request.start)
        if request.start == request.destination:
            direct = 0.0
        else:
            try:
                direct = start_tree[request.destination]
            except KeyError:
                raise DisconnectedError(request.start, request.destination) from None
        return cls(
            request=request, engine=engine, grid=grid, direct=direct, start_tree=start_tree
        )

    def from_start(self, vertex: VertexId) -> float:
        """Distance from the request start to ``vertex`` (cached tree lookup).

        Raises:
            DisconnectedError: if ``vertex`` is unreachable from the start.
        """
        if vertex == self.request.start:
            return 0.0
        try:
            return self.start_tree[vertex]
        except KeyError:
            raise DisconnectedError(self.request.start, vertex) from None

    def distance(self, source: VertexId, target: VertexId) -> float:
        """Exact distance between two vertices.

        Legs touching the request start are answered from the pinned start
        tree (the network is undirected), so they stay O(1) even if the
        engine's tree cache evicts the start entry mid-match; everything else
        delegates to the engine.
        """
        start = self.request.start
        if source == start:
            return self.from_start(target)
        if target == start:
            return self.from_start(source)
        return self.engine.distance(source, target)

    def lower_bound(self, source: VertexId, target: VertexId) -> float:
        """Best admissible lower bound available: grid cells vs ALT landmarks.

        When the engine's bound is exact (the all-pairs table backend) no
        admissible bound can beat it, so the grid lookup is skipped.
        """
        engine_bound = self.engine.distance_lower_bound(source, target)
        if self.engine.exact_lower_bounds:
            return engine_bound
        bound = self.grid.distance_lower_bound(source, target)
        return engine_bound if engine_bound > bound else bound
