"""PTRider's primary contribution: price-and-time-aware request matching.

The subpackage contains

* :mod:`repro.core.pricing` -- the price model of Definition 3;
* :mod:`repro.core.insertion` -- insertion of a request into a vehicle's
  kinetic tree with lower-bound short-circuiting;
* :mod:`repro.core.batch` -- shared routing contexts for a batch of
  simultaneous requests (pooled trees, batch-wide distance memo);
* :mod:`repro.core.matcher` -- the common matcher interface and statistics;
* :mod:`repro.core.naive` -- the kinetic-tree baseline that verifies every
  vehicle (Section 3.3, "a naive method");
* :mod:`repro.core.single_side` -- the single-side search algorithm;
* :mod:`repro.core.dual_side` -- the dual-side search algorithm;
* :mod:`repro.core.dispatcher` -- the request / options / choice cycle and
  the greedy strategy for simultaneous requests;
* :mod:`repro.core.config` -- the global system parameters of the website
  admin interface.
"""

from repro.core.batch import BatchContext, BatchStatistics
from repro.core.config import SystemConfig
from repro.core.dispatcher import Dispatcher, DispatchOutcome, OptionPolicy
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.insertion import InsertionCandidate, insertion_candidates
from repro.core.matcher import Matcher, MatcherStatistics
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.pricing import LinearPriceModel, PriceModel, rider_price_ratio
from repro.core.single_side import SingleSideSearchMatcher

__all__ = [
    "BatchContext",
    "BatchStatistics",
    "Dispatcher",
    "DispatchOutcome",
    "DualSideSearchMatcher",
    "InsertionCandidate",
    "LinearPriceModel",
    "Matcher",
    "MatcherStatistics",
    "NaiveKineticTreeMatcher",
    "OptionPolicy",
    "PriceModel",
    "SingleSideSearchMatcher",
    "SystemConfig",
    "insertion_candidates",
    "rider_price_ratio",
]
