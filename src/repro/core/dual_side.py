"""The dual-side search algorithm (Section 3.3).

Single-side search only prunes with information derived from the request's
*start* location.  The paper motivates the dual-side variant with a schedule
that passes near the start but far from the destination: the vehicle looks
promising from the start side, yet serving the request forces a long detour
to the destination, so the option is expensive and usually dominated.

Dual-side search therefore screens every candidate vehicle from **both
sides**: in addition to the start-side pick-up and price bounds of the
single-side search, it computes an admissible lower bound on the detour
needed to reach the *destination* (using the combined grid / ALT lower
bounds of the :class:`~repro.core.context.MatchContext` against every branch
of the vehicle's kinetic tree) and prunes the vehicle when the combined
optimistic option is already dominated.  The bounds remain admissible, so the
returned skyline is identical to the single-side and naive matchers'
(property-tested); only the amount of verification work differs.
"""

from __future__ import annotations

from repro.core.context import MatchContext
from repro.core.matcher import added_distance_lower_bound
from repro.core.single_side import SingleSideSearchMatcher
from repro.vehicles.vehicle import Vehicle

__all__ = ["DualSideSearchMatcher"]


class DualSideSearchMatcher(SingleSideSearchMatcher):
    """Single-side expansion plus destination-side price pruning."""

    name = "dual_side"

    def _price_lower_bound(self, vehicle: Vehicle, context: MatchContext) -> float:
        """Tighten the price bound with the detour needed to reach the destination.

        The added distance of any schedule serving the request is at least the
        detour needed to visit the start *and* at least the detour needed to
        visit the destination (dropping the other new stop from a schedule
        never increases its length), so the maximum of the two start-/
        destination-side bounds is admissible.
        """
        if vehicle.is_empty:
            # For an empty vehicle the start-side bound is already exact in
            # shape (pick-up leg plus direct trip); the destination adds
            # nothing because the trip ends there.
            return super()._price_lower_bound(vehicle, context)
        request = context.request
        start_side = added_distance_lower_bound(
            vehicle,
            request.start,
            self._grid,
            self._engine,
            bound=context.lower_bound,
            distance=context.distance,
        )
        destination_side = added_distance_lower_bound(
            vehicle,
            request.destination,
            self._grid,
            self._engine,
            bound=context.lower_bound,
            distance=context.distance,
        )
        added_lb = max(start_side, destination_side)
        return self._price_model.price(request.riders, added_lb, context.direct)
