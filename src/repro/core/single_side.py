"""The single-side search algorithm (Section 3.3).

For a request ``R = <s, d, n, w, epsilon>`` the search starts from the grid
cell containing ``s`` and visits the remaining cells in ascending order of
their lower-bound distance to that cell (the pre-sorted *grid cell list* of
Fig. 1(b)).  Within each cell, the empty-vehicle list and the non-empty
vehicle list are processed separately:

* every vehicle is first screened with **admissible lower bounds** on the
  pick-up distance (grid bound on ``dist(c.l, s)``, tightened by the routing
  engine's ALT landmark bound when one is configured) and on the price (for
  an empty vehicle the exact form of its added distance, for a non-empty
  vehicle a start-side detour bound); a vehicle whose optimistic bounds are
  already dominated by a confirmed option -- or whose pick-up bound exceeds
  the configured maximum pick-up distance -- is pruned without verification;
* surviving vehicles are verified by inserting the request into their kinetic
  tree (with lower-bound short-circuiting inside the insertion, Section 3.3's
  second optimisation).

The request's direct distance and its rooted distance tree live in the
per-request :class:`~repro.core.context.MatchContext`, so no vehicle
verification re-issues a request-side shortest-path query.  Both the context
and the fleet are injected arguments: the batch pipeline passes pooled
contexts and per-shard :class:`~repro.vehicles.fleet.ShardedFleetView`\\ s,
and the search is oblivious to whether it sees one shard or the whole fleet
(the pruning below is admissible against any subset of the fleet).

The cell expansion itself terminates early when the cell-level lower bound
proves that **no** vehicle registered in the remaining cells can contribute a
non-dominated option.  All pruning rules are admissible, so the result set is
identical to the naive matcher's (verified by property-based tests).
"""

from __future__ import annotations

import math
from typing import List, Set

from repro.core.context import MatchContext
from repro.core.matcher import Matcher
from repro.model.options import RideOption, Skyline
from repro.vehicles.vehicle import Vehicle

__all__ = ["SingleSideSearchMatcher"]


class SingleSideSearchMatcher(Matcher):
    """Grid expansion from the request's start cell with admissible pruning."""

    name = "single_side"

    def _collect_options(self, context: MatchContext, fleet) -> List[RideOption]:
        request, direct = context.request, context.direct
        start_cell = self._grid.cell_of_vertex(request.start).cell_id
        start_min = self._grid.vertex_min(request.start)
        max_pickup = self._config.max_pickup_distance
        max_pickup_value = math.inf if max_pickup is None else max_pickup
        price_floor = self._price_model.price(request.riders, 0.0, direct)

        skyline = Skyline()
        seen: Set[str] = set()
        skip_empty_lists = False

        for cell_bound, cell in self._grid.expand_from(start_cell):
            self.statistics.cells_visited += 1
            # Lower bound on dist(x, s) for ANY vertex x in this cell (and, by
            # the ascending expansion order, in every later cell).
            cell_pickup_lb = 0.0 if cell.cell_id == start_cell else cell_bound + start_min

            if cell_pickup_lb > max_pickup_value:
                # No vehicle whose current location lies this far out can offer
                # an option within the pick-up cap; vehicles registered here
                # with a *closer* current location were already encountered in
                # their own (closer) cell, so the whole expansion can stop.
                break
            if skyline.would_be_dominated(cell_pickup_lb, price_floor):
                # Even a hypothetical zero-detour vehicle in this (or any
                # later) cell would be dominated: stop the expansion.
                break
            if not skip_empty_lists and skyline.would_be_dominated(
                cell_pickup_lb,
                self._price_model.price(request.riders, cell_pickup_lb + direct, direct),
            ):
                # Empty vehicles this far out (or further) are always dominated
                # because their added distance is at least their pick-up
                # distance plus the direct trip.
                skip_empty_lists = True

            if not skip_empty_lists:
                for vehicle in fleet.empty_vehicles_in_cell(cell.cell_id):
                    self._consider(vehicle, context, max_pickup_value, seen, skyline)
            for vehicle in fleet.nonempty_vehicles_in_cell(cell.cell_id):
                self._consider(vehicle, context, max_pickup_value, seen, skyline)

        return skyline.options()

    # ------------------------------------------------------------------
    def _consider(
        self,
        vehicle: Vehicle,
        context: MatchContext,
        max_pickup: float,
        seen: Set[str],
        skyline: Skyline,
    ) -> None:
        """Screen one vehicle with lower bounds; verify it if it survives."""
        if vehicle.vehicle_id in seen:
            return
        seen.add(vehicle.vehicle_id)
        self.statistics.vehicles_considered += 1

        pickup_lb = self._pickup_lower_bound(vehicle, context)
        if pickup_lb > max_pickup + 1e-9:
            self.statistics.vehicles_pruned += 1
            return
        price_lb = self._price_lower_bound(vehicle, context)
        if skyline.would_be_dominated(pickup_lb, price_lb):
            self.statistics.vehicles_pruned += 1
            return
        skyline.extend(self._verify_vehicle(vehicle, context))
