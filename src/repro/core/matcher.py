"""Common matcher machinery.

Every matching algorithm (naive kinetic tree, single-side search, dual-side
search, and the baselines under :mod:`repro.baselines`) answers the same
query: given the current fleet state and a request, return the qualified,
non-dominated ``<vehicle, pick-up distance, price>`` options (Definition 4).
:class:`Matcher` fixes that interface, owns the shared resources (fleet, grid
index, routing engine, price model, system configuration) and provides the
per-vehicle verification step all algorithms share; subclasses only decide
*which* vehicles to verify and in what order, and which admissible lower
bounds justify skipping a vehicle.

Each ``match`` call builds one :class:`~repro.core.context.MatchContext`
carrying the request, its direct distance and the request-rooted distance
tree; every per-vehicle step receives that context instead of re-querying the
routing engine, so the request-side shortest-path work is paid exactly once
per request regardless of how many vehicles are verified.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.config import SystemConfig
from repro.core.context import MatchContext
from repro.core.insertion import InsertionStatistics, insertion_candidates
from repro.core.pricing import LinearPriceModel, PriceModel
from repro.model.options import RideOption, Skyline, skyline_of
from repro.model.request import Request
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import RoutingEngine
from repro.vehicles.fleet import Fleet
from repro.vehicles.vehicle import Vehicle

__all__ = ["MatcherStatistics", "Matcher", "added_distance_lower_bound"]


@dataclass
class MatcherStatistics:
    """Work counters a matcher accumulates across ``match`` calls.

    The counters drive the index-ablation and matcher-comparison experiments
    (E3 / E10 in ``DESIGN.md``) and the statistics panel of the demo website.
    """

    requests_answered: int = 0
    vehicles_considered: int = 0
    vehicles_evaluated: int = 0
    vehicles_pruned: int = 0
    cells_visited: int = 0
    options_returned: int = 0
    insertion: InsertionStatistics = field(default_factory=InsertionStatistics)

    def reset(self) -> None:
        """Zero every counter."""
        self.requests_answered = 0
        self.vehicles_considered = 0
        self.vehicles_evaluated = 0
        self.vehicles_pruned = 0
        self.cells_visited = 0
        self.options_returned = 0
        self.insertion = InsertionStatistics()

    def as_dict(self) -> Dict[str, float]:
        """Return the counters as a flat dictionary (for reports)."""
        return {
            "requests_answered": float(self.requests_answered),
            "vehicles_considered": float(self.vehicles_considered),
            "vehicles_evaluated": float(self.vehicles_evaluated),
            "vehicles_pruned": float(self.vehicles_pruned),
            "cells_visited": float(self.cells_visited),
            "options_returned": float(self.options_returned),
            "insertions_enumerated": float(self.insertion.candidates_enumerated),
            "insertions_feasible": float(self.insertion.candidates_feasible),
            "insertions_rejected_by_bounds": float(self.insertion.candidates_rejected_by_bounds),
        }


class Matcher(abc.ABC):
    """Base class of every matching algorithm.

    Args:
        fleet: the vehicle index (which also carries the grid index and the
            routing engine).
        config: global system parameters; defaults to :class:`SystemConfig`.
        price_model: price calculator; defaults to the one in ``config``.
    """

    #: human-readable algorithm name (used by the CLI, service and benchmarks)
    name = "abstract"

    #: whether per-shard results of this matcher may be merged by dominance.
    #: True for skyline matchers (the merge is lossless, see
    #: ``Skyline.merge``); single-option baselines whose result is *not* a
    #: dominance skyline set this to False and are always matched against the
    #: whole fleet, even when the batch pipeline shards.
    supports_sharding = True

    def __init__(
        self,
        fleet: Fleet,
        config: Optional[SystemConfig] = None,
        price_model: Optional[PriceModel] = None,
    ) -> None:
        self._fleet = fleet
        self._grid: GridIndex = fleet.grid
        self._engine: RoutingEngine = fleet.routing_engine
        self._config = config or SystemConfig()
        self._price_model: PriceModel = price_model or self._config.price_model
        self.statistics = MatcherStatistics()

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        """The fleet the matcher searches."""
        return self._fleet

    @property
    def config(self) -> SystemConfig:
        """The global system parameters in effect."""
        return self._config

    @property
    def price_model(self) -> PriceModel:
        """The price calculator used to price options."""
        return self._price_model

    @property
    def engine(self) -> RoutingEngine:
        """The routing engine shared with the fleet."""
        return self._engine

    @property
    def oracle(self) -> RoutingEngine:
        """Backwards-compatible alias for :attr:`engine`."""
        return self._engine

    def make_context(self, request: Request) -> MatchContext:
        """Build the per-request context (direct distance plus start tree)."""
        return MatchContext.create(request, self._engine, self._grid)

    def match(self, request: Request) -> List[RideOption]:
        """Return the non-dominated options answering ``request``.

        The returned list is the skyline over every option produced by
        :meth:`_collect_options`, sorted by ascending pick-up distance.
        """
        return self.match_context(self.make_context(request))

    def match_context(self, context: MatchContext, fleet: Optional[object] = None) -> List[RideOption]:
        """Match against an injected context and fleet view.

        ``fleet`` may be the whole :class:`~repro.vehicles.fleet.Fleet`
        (default) or a :class:`~repro.vehicles.fleet.ShardedFleetView`; the
        batch pipeline injects pre-built contexts (shared distance trees) and
        per-shard views here instead of letting the matcher reach into the
        global fleet.
        """
        self.statistics.requests_answered += 1
        options = self._collect_options(context, fleet if fleet is not None else self._fleet)
        result = skyline_of(options)
        self.statistics.options_returned += len(result)
        return result

    def collect_shard(self, context: MatchContext, fleet: object) -> List[RideOption]:
        """Per-shard skyline for the batch pipeline.

        Unlike :meth:`match_context` this does not bump the request-level
        counters -- the pipeline counts each rider request once after merging
        the per-shard skylines.
        """
        return skyline_of(self._collect_options(context, fleet))

    @abc.abstractmethod
    def _collect_options(self, context: MatchContext, fleet: object) -> List[RideOption]:
        """Produce candidate options over ``fleet`` (a Fleet or a ShardedFleetView).

        Subclasses decide which of the view's vehicles to verify and in what
        order; they must query vehicles through ``fleet``, never through the
        matcher's own fleet reference, so the batch pipeline can shard.
        """

    # ------------------------------------------------------------------
    # shared verification step
    # ------------------------------------------------------------------
    def _verify_vehicle(
        self, vehicle: Vehicle, context: MatchContext, use_bound_rejection: bool = True
    ) -> List[RideOption]:
        """Fully evaluate one vehicle and return its non-dominated options.

        ``use_bound_rejection`` controls whether the insertion step may use
        grid lower bounds to skip exact evaluation of clearly infeasible
        candidate schedules (the naive matcher turns this off to reproduce the
        plain kinetic-tree algorithm).
        """
        self.statistics.vehicles_evaluated += 1
        grid = self._grid if use_bound_rejection else None
        request = context.request
        candidates = insertion_candidates(
            vehicle,
            request,
            self._engine,
            grid=grid,
            statistics=self.statistics.insertion,
            direct=context.direct,
            distance=context.distance,
        )
        direct = context.direct
        max_pickup = self._config.max_pickup_distance
        options: List[RideOption] = []
        for candidate in candidates:
            if max_pickup is not None and candidate.pickup_distance > max_pickup + 1e-9:
                continue
            price = self._price_model.price(request.riders, candidate.added_distance, direct)
            options.append(
                RideOption(
                    vehicle_id=vehicle.vehicle_id,
                    pickup_distance=candidate.pickup_distance,
                    price=price,
                    request_id=request.request_id,
                    schedule=candidate.schedule,
                    added_distance=candidate.added_distance,
                )
            )
        # Each vehicle offers only its own non-dominated pairs (Section 2.5).
        return skyline_of(options)

    # ------------------------------------------------------------------
    # admissible lower bounds shared by the grid-based searches
    # ------------------------------------------------------------------
    def _pickup_lower_bound(self, vehicle: Vehicle, context: MatchContext) -> float:
        """Admissible lower bound on the pick-up distance any option of ``vehicle`` can have."""
        return context.lower_bound(vehicle.location, context.request.start) + vehicle.offset

    def _price_lower_bound(self, vehicle: Vehicle, context: MatchContext) -> float:
        """Admissible lower bound on the price any option of ``vehicle`` can have.

        For an empty vehicle the added distance is exactly
        ``dist(c.l, s) + dist(s, d)``; for a non-empty vehicle the single-side
        bound only uses the start-side detour.  The dual-side matcher
        overrides this with the destination-side bound as well.
        """
        request, direct = context.request, context.direct
        if vehicle.is_empty:
            pickup_lb = self._pickup_lower_bound(vehicle, context)
            return self._price_model.price(request.riders, pickup_lb + direct, direct)
        added_lb = added_distance_lower_bound(
            vehicle,
            request.start,
            self._grid,
            self._engine,
            bound=context.lower_bound,
            distance=context.distance,
        )
        return self._price_model.price(request.riders, added_lb, direct)


def added_distance_lower_bound(
    vehicle: Vehicle,
    vertex: int,
    grid: GridIndex,
    oracle: RoutingEngine,
    bound: Optional[Callable[[int, int], float]] = None,
    distance: Optional[Callable[[int, int], float]] = None,
) -> float:
    """Admissible lower bound on the extra distance needed to visit ``vertex``.

    For every branch of the vehicle's kinetic tree and every insertion
    position, the added distance of detouring through ``vertex`` is bounded
    from below using admissible lower bounds for the new legs and exact
    (cached) distances for the replaced leg; the minimum over all positions
    and branches is an admissible bound for any schedule that additionally
    visits ``vertex`` -- including schedules that insert several new stops,
    because dropping the other new stops never increases the added distance.

    ``bound`` overrides the leg lower bound (defaults to the grid cell bound);
    the matchers pass :meth:`MatchContext.lower_bound` so ALT landmark bounds
    tighten the estimate when the routing engine provides them.  ``distance``
    overrides the exact replaced-leg distance (defaults to ``oracle.distance``);
    the matchers pass :meth:`MatchContext.distance` so batched dispatch can
    answer the legs from its batch-wide memo.
    """
    bound_fn = bound if bound is not None else grid.distance_lower_bound
    distance_fn = distance if distance is not None else oracle.distance
    schedules = vehicle.kinetic_tree.schedules()
    origin = vehicle.location
    if not schedules:
        return bound_fn(origin, vertex) + vehicle.offset
    best = math.inf
    for schedule in schedules:
        previous = origin
        for stop in schedule:
            replaced = distance_fn(previous, stop.vertex)
            detour = (
                bound_fn(previous, vertex)
                + bound_fn(vertex, stop.vertex)
                - replaced
            )
            best = min(best, max(0.0, detour))
            previous = stop.vertex
        # appending after the last stop
        best = min(best, bound_fn(previous, vertex))
        if best <= 0.0:
            return 0.0
    return best
