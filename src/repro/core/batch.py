"""Shared routing contexts for a batch of simultaneous requests.

The greedy strategy of Section 2.5 processes simultaneous requests one after
the other, but nothing about the *routing* side of a request depends on the
order: a request's direct distance and its start-rooted distance tree are
functions of the road network only.  :class:`BatchContext` therefore pools
that work for a whole tick's worth of requests:

* start vertices are **deduplicated** -- requests sharing a start vertex
  share one distance tree, computed exactly once and pinned by reference for
  the lifetime of the batch (engine cache eviction can never force a
  recomputation mid-batch, no matter how many requests the tick carries);
* all missing trees are **prefetched in one vectorised engine call** before
  matching begins (:meth:`~repro.roadnet.routing.RoutingEngine.prefetch_trees`;
  one ``scipy.csgraph.dijkstra(indices=[...])`` plane on the CSR backend,
  precomputed row views on the table backend, a no-op on the dict backend,
  which then computes trees per start exactly as before);
* each request receives a regular
  :class:`~repro.core.context.MatchContext` built from the pooled tree, so
  the matchers are oblivious to whether a context was built per-request or
  per-batch;
* endpoint errors (unknown vertex, unreachable destination) are *recorded*
  instead of raised, and surface when the pipeline reaches the failing
  request in submission order -- exactly when the sequential loop would have
  raised them, so earlier requests still commit.

:class:`BatchStatistics` reports the shared-tree hit rate the benchmark
harness records (``bench_e12_batch_dispatch.py``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.context import MatchContext
from repro.errors import DisconnectedError, VertexNotFoundError
from repro.model.request import Request
from repro.roadnet.graph import VertexId
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import RoutingEngine

__all__ = ["BatchStatistics", "BatchMatchContext", "BatchContext"]


@dataclass
class BatchStatistics:
    """How much routing work the batch shared across its requests.

    For a batch whose endpoints all resolve,
    ``prefetched_trees + trees_computed + shared_tree_hits == requests``;
    requests with an unknown start vertex receive no tree and count in none
    of the terms.  A prefetched tree counts exactly once however many
    requests consume it: the first consumer is covered by
    ``prefetched_trees``, every later one by ``shared_tree_hits``.

    ``tree_provider`` names the engine mechanism the prefetch was billed
    to ("plane" for CSR planes, "phast" for the hierarchy-native sweep,
    "table" for precomputed rows, "dijkstra" for the per-source reference
    path), so an E15-style ablation can attribute ``prefetch_seconds`` --
    and the engine-side ``dijkstra_runs`` vs ``phast_sweeps`` split -- to
    the provider that actually did the work.
    """

    #: number of requests in the batch
    requests: int = 0
    #: start-rooted trees computed one at a time (engines without a bulk path)
    trees_computed: int = 0
    #: requests whose tree was already pooled by an earlier request
    shared_tree_hits: int = 0
    #: distinct start trees obtained through the one-shot vectorised prefetch
    prefetched_trees: int = 0
    #: wall time of the single ``prefetch_trees`` engine call
    prefetch_seconds: float = 0.0
    #: name of the tree provider the prefetch work was billed to
    tree_provider: str = "dijkstra"
    #: fleet-side leg sources (vehicle locations + committed stops) whose
    #: trees were folded into the one-shot prefetch plane (0 = legs not
    #: prefetched; the serving path's ingest flush turns this on)
    leg_sources_prefetched: int = 0
    #: exact leg queries answered from a prefetched leg tree instead of a
    #: cold single-source engine computation
    leg_tree_hits: int = 0
    #: worker processes the collect/verify stage fanned out to (0 = in-process)
    parallel_workers: int = 0
    #: wall seconds this batch lost to cross-process shipping (payload
    #: pickling plus turn round-trips minus the slowest worker's compute)
    ipc_seconds: float = 0.0
    #: accumulated collect/verify wall seconds per shard, indexed by shard
    #: (filled by the parallel path; empty when the batch ran in-process)
    shard_wall_seconds: Tuple[float, ...] = ()

    @property
    def shared_tree_hit_rate(self) -> float:
        """Fraction of tree-resolved requests served by an already-pooled tree."""
        resolved = self.trees_computed + self.prefetched_trees + self.shared_tree_hits
        if not resolved:
            return 0.0
        return self.shared_tree_hits / resolved

    def as_dict(self) -> Dict[str, object]:
        """Flat dictionary for reports and benchmark records.

        All values are floats except ``tree_provider``, the provider name
        the prefetch was billed to -- consumers that can only carry
        numbers (the service's float panel) filter on type.
        """
        return {
            "requests": float(self.requests),
            "trees_computed": float(self.trees_computed),
            "shared_tree_hits": float(self.shared_tree_hits),
            "shared_tree_hit_rate": self.shared_tree_hit_rate,
            "prefetched_trees": float(self.prefetched_trees),
            "prefetch_seconds": self.prefetch_seconds,
            "leg_sources_prefetched": float(self.leg_sources_prefetched),
            "leg_tree_hits": float(self.leg_tree_hits),
            "tree_provider": self.tree_provider,
            "parallel_workers": float(self.parallel_workers),
            "ipc_seconds": self.ipc_seconds,
            "shard_wall_seconds_max": max(self.shard_wall_seconds, default=0.0),
            "shard_wall_seconds_total": float(sum(self.shard_wall_seconds)),
        }


@dataclass
class BatchMatchContext(MatchContext):
    """A :class:`MatchContext` whose exact distances are memoised batch-wide.

    Verifying a candidate vehicle issues point-to-point queries for the legs
    of its *existing* schedules (replaced legs, prefix distances); those legs
    are properties of the fleet, not of the request, so every request of a
    batch re-asks the very same queries.  All contexts of one
    :class:`BatchContext` share one ``shared_distances`` memo keyed by the
    (order-normalised) endpoint pair: the first request pays the engine query,
    every later request of the batch hits the memo -- immune to engine cache
    eviction, and bounded by the batch's actual verification working set.

    The memo stores the engine's own answers verbatim (the engine roots every
    point query canonically), so batched verifications see bit-for-bit the
    floats a per-request context would.

    ``leg_trees`` optionally extends the pool to *fleet-side* sources
    (vehicle locations, committed schedule stops) prefetched into the same
    vectorised plane as the start trees.  A memo miss whose canonical root
    (the smaller vertex id -- exactly the root ``RoutingEngine.distance``
    picks) has a prefetched tree is answered from that pinned row instead of
    falling back to a cold single-source engine computation; the rows obey
    the tree-provider bit-identity contract, so the answers are the engine's
    own floats.  Lookups that cannot be answered from the plane (unknown or
    unreachable leaf, root not prefetched) fall back to the engine verbatim,
    preserving its exact error behaviour.
    """

    #: batch-wide exact-distance memo shared by every context of the batch
    shared_distances: Dict[Tuple[VertexId, VertexId], float] = field(default_factory=dict)
    #: prefetched trees rooted at fleet-side leg sources, shared batch-wide
    leg_trees: Mapping[VertexId, Mapping[VertexId, float]] = field(default_factory=dict)
    #: statistics sink for ``leg_tree_hits`` (shared by the whole batch)
    batch_statistics: Optional[BatchStatistics] = None

    def distance(self, source: VertexId, target: VertexId) -> float:
        """Exact distance; start-rooted legs from the pinned tree, others memoised."""
        start = self.request.start
        if source == start:
            return self.from_start(target)
        if target == start:
            return self.from_start(source)
        key = (source, target) if source <= target else (target, source)
        value = self.shared_distances.get(key)
        if value is None:
            if self.leg_trees:
                root, leaf = key  # key is already rooted at the smaller id
                tree = self.leg_trees.get(root)
                if tree is not None:
                    value = tree.get(leaf)
                    if value is not None and self.batch_statistics is not None:
                        self.batch_statistics.leg_tree_hits += 1
            if value is None:
                value = self.engine.distance(source, target)
            self.shared_distances[key] = value
        return value


class BatchContext:
    """Pooled per-request :class:`MatchContext`\\ s for one dispatch batch.

    Build one with :meth:`create`; fetch a request's context (or its recorded
    endpoint error) with :meth:`context_for` when the pipeline reaches that
    request in submission order.
    """

    def __init__(
        self,
        requests: Sequence[Request],
        contexts: Dict[int, MatchContext],
        errors: Dict[int, Exception],
        statistics: BatchStatistics,
        seconds: Optional[Dict[int, float]] = None,
    ) -> None:
        self._requests = list(requests)
        self._contexts = contexts
        self._errors = errors
        self._seconds = seconds or {}
        self.statistics = statistics

    @classmethod
    def create(
        cls,
        requests: Sequence[Request],
        engine: RoutingEngine,
        grid: GridIndex,
        prefetch: bool = True,
        leg_sources: Optional[Sequence[VertexId]] = None,
    ) -> "BatchContext":
        """Pool trees and direct distances for ``requests`` (in order).

        Start vertices are deduplicated and every missing tree is prefetched
        through **one** vectorised
        :meth:`~repro.roadnet.routing.RoutingEngine.prefetch_trees` call
        before any request is examined (engines without a bulk path return
        nothing and trees are computed per distinct start, as before;
        ``prefetch=False`` forces that per-source path for ablations).
        Requests sharing a start reuse the pooled reference.  Endpoint
        failures are recorded per request, not raised -- ``prefetch_trees``
        skips unknown start vertices, so the per-request path still observes
        the exact error the sequential loop would have raised.

        ``leg_sources`` optionally folds *fleet-side* vertices (vehicle
        locations, committed schedule stops) into the same one-shot prefetch
        plane; the resulting trees are shared by every context's
        ``leg_trees`` so schedule-leg verification queries hit a pinned row
        instead of recomputing cold single-source trees under engine-cache
        pressure.  Purely a performance hint: answers and errors are
        bit-identical with or without it (only sources the engine's bulk
        path actually resolves are consulted, and every unresolvable lookup
        falls back to the engine).

        Memory: the pool holds one O(V) tree per distinct start vertex of the
        batch -- the price of immunity to engine cache eviction.  The pool
        itself keeps no strong references after construction (each context
        pins only its own tree), and :meth:`release` lets the pipeline drop a
        request's context -- and with it the tree, once no later same-start
        request needs it -- as soon as its turn is decided, so peak usage
        shrinks as the batch drains.
        """
        trees: Dict[VertexId, Mapping[VertexId, float]] = {}
        tree_errors: Dict[VertexId, Exception] = {}
        contexts: Dict[int, MatchContext] = {}
        errors: Dict[int, Exception] = {}
        seconds: Dict[int, float] = {}
        shared_distances: Dict[Tuple[VertexId, VertexId], float] = {}
        statistics = BatchStatistics(
            requests=len(requests), tree_provider=engine.tree_provider_name
        )

        prefetch_share = 0.0
        unbilled_prefetches: set = set()
        leg_trees: Mapping[VertexId, Mapping[VertexId, float]] = {}
        if prefetch and requests:
            distinct_starts = list(dict.fromkeys(request.start for request in requests))
            started = time.perf_counter()
            if leg_sources:
                start_set = set(distinct_starts)
                extra = [
                    vertex
                    for vertex in dict.fromkeys(leg_sources)
                    if vertex not in start_set
                ]
                pooled = engine.prefetch_trees(distinct_starts + extra)
                # Start trees feed the per-request contexts below; the whole
                # pooled plane (starts included -- a leg query may root at a
                # vertex that happens to be some request's start) answers
                # schedule-leg queries.
                trees.update(
                    (vertex, pooled[vertex])
                    for vertex in distinct_starts
                    if vertex in pooled
                )
                leg_trees = pooled
                statistics.leg_sources_prefetched = sum(
                    1 for vertex in extra if vertex in pooled
                )
            else:
                trees.update(engine.prefetch_trees(distinct_starts))
            statistics.prefetch_seconds = time.perf_counter() - started
            statistics.prefetched_trees = len(trees)
            if trees:
                # Bill each tree's share of the one-shot call to its first
                # consumer below, the request that would have paid for the
                # tree inline on the per-source path.
                prefetch_share = statistics.prefetch_seconds / len(trees)
                unbilled_prefetches = set(trees)

        for index, request in enumerate(requests):
            start = request.start
            extra = 0.0
            started = time.perf_counter()
            if start in trees:
                if start in unbilled_prefetches:
                    unbilled_prefetches.discard(start)
                    extra = prefetch_share
                else:
                    statistics.shared_tree_hits += 1
            elif start not in tree_errors:
                try:
                    trees[start] = engine.distances_from(start)
                    statistics.trees_computed += 1
                except VertexNotFoundError as error:
                    tree_errors[start] = error
            seconds[index] = extra + time.perf_counter() - started
            if start in tree_errors:
                errors[index] = tree_errors[start]
                continue
            tree = trees[start]
            if start == request.destination:
                direct = 0.0
            else:
                try:
                    direct = tree[request.destination]
                except KeyError:
                    errors[index] = DisconnectedError(start, request.destination)
                    continue
            contexts[index] = BatchMatchContext(
                request=request,
                engine=engine,
                grid=grid,
                direct=direct,
                start_tree=tree,
                shared_distances=shared_distances,
                leg_trees=leg_trees,
                batch_statistics=statistics,
            )
        return cls(requests, contexts, errors, statistics, seconds)

    def __len__(self) -> int:
        return len(self._requests)

    @property
    def requests(self) -> List[Request]:
        """The batch's requests in submission order."""
        return list(self._requests)

    def error_for(self, index: int) -> Optional[Exception]:
        """The endpoint error recorded for request ``index`` (``None`` if fine)."""
        return self._errors.get(index)

    def context_for(self, index: int) -> MatchContext:
        """Return the pooled context of request ``index``.

        Raises:
            VertexNotFoundError / DisconnectedError: the error the sequential
                loop would have raised when it reached this request.
        """
        error = self._errors.get(index)
        if error is not None:
            raise error
        return self._contexts[index]

    def context_seconds(self, index: int) -> float:
        """Wall time spent building request ``index``'s share of the pool.

        The first request of a start vertex is billed its tree computation;
        requests served by an already-pooled tree are billed (almost)
        nothing.  The pipeline adds this to each outcome's ``match_seconds``
        so response times keep covering the request-side routing work, as
        they did when contexts were built inline.
        """
        return self._seconds.get(index, 0.0)

    def export_tree_plane(self) -> Optional[Tuple[object, Dict[VertexId, int]]]:
        """The batch's pooled start trees as one ``(k, n)`` float64 plane.

        Returns ``(plane, start_rows)`` -- a row per distinct start vertex
        plus the start -> row map -- when *every* pooled tree is backed by a
        dense ndarray over the engine's vertex order (the CSR / table / CH
        providers), or ``None`` otherwise (pure-Python trees, the dict
        backend, no NumPy).  The parallel dispatch pool publishes the plane
        into shared memory so workers re-wrap the very same rows zero-copy;
        on ``None`` workers recompute trees through their attached engines,
        which is bit-identical by the tree-provider contract.

        Call before the pipeline starts releasing contexts: rows are
        gathered from the live context pool.
        """
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy-less environment
            return None
        rows: List[object] = []
        start_rows: Dict[VertexId, int] = {}
        for index in sorted(self._contexts):
            context = self._contexts[index]
            start = context.request.start
            if start in start_rows:
                continue
            row = getattr(context.start_tree, "_dist", None)
            if not isinstance(row, np.ndarray):
                return None
            start_rows[start] = len(rows)
            rows.append(row)
        if not rows:
            return None
        return np.vstack(rows), start_rows

    def release(self, index: int) -> None:
        """Drop request ``index``'s context (and its tree pin, if the last)."""
        self._contexts.pop(index, None)
