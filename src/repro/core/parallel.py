"""Parallel shard execution: a zero-copy shared-memory worker pool.

The batch pipeline of :meth:`~repro.core.dispatcher.Dispatcher.dispatch_batch`
is embarrassingly parallel across disjoint fleet shards -- every request's
per-shard collect/verify stage reads the same immutable routing structures
(the CSR arrays, the CH upward/downward arrays, the batch's prefetched tree
plane) and a per-shard slice of the fleet, while the merge + greedy-commit
stage is inherently sequential.  This module moves exactly the parallel part
across processes, and nothing else:

* **Publish once** -- at pool start the engine's flat NumPy buffers are
  copied into :mod:`multiprocessing.shared_memory` segments
  (:class:`SharedArrayPack`) and described by a tiny manifest of
  ``(name, segment, dtype, shape)`` tuples.  The per-batch ``(k, n)`` tree
  plane gets its own short-lived segment.
* **Attach zero-copy** -- each worker process re-wraps the segments as
  *read-only* ndarrays (:func:`attach_shared_arrays`) and rebuilds a routing
  engine around them (:func:`~repro.roadnet.routing.attach_shared_engine`);
  no matter how large the road network, a worker's per-process memory is the
  Python-object side only (network dict, grid index, mirror fleet).
* **Ship only what changes** -- the spawn payload carries the road network,
  the config and pickle-lean vehicle snapshots
  (:func:`~repro.vehicles.fleet.snapshot_vehicle`); each turn ships the
  committed vehicle's refreshed snapshot to the one worker whose shard it
  belongs to, and per-shard skylines come back as plain option lists.
* **Stay byte-identical** -- workers answer through the same engines, the
  same pooled trees (re-wrapped from the very same plane rows) and the same
  canonical query rooting as the parent, and the merge + commit stage never
  leaves the parent, so outcomes are bit-for-bit those of
  :meth:`~repro.core.dispatcher.Dispatcher.dispatch_sequential`
  (property-tested in ``tests/property/test_parallel_equivalence.py``).

Failure policy: anything going wrong -- ``shared_memory`` missing, the
``spawn`` start method unavailable, a backend without an export surface, a
worker crash mid-batch -- degrades to the in-process path.  The parent fleet
is always current (commits happen there), so a batch can switch from remote
to local collection between two requests without changing a single byte of
output.

The same policy covers *hangs*: every reply wait doubles as a per-shard
heartbeat check.  When :attr:`ParallelDispatchPool.worker_timeout` is set
and a worker sends nothing within it, the worker is declared wedged, killed
(``SIGKILL`` -- polite termination is exactly what a wedged process
ignores) and the batch continues on the in-process path, byte-identically.
``close()`` escalates join -> terminate -> kill for the same reason: a
worker that outlives the parent would leak its attached ``/dev/shm``
segments.  Fault injection for all of this lives in
:mod:`repro.service.faults` (imported lazily to keep the core free of
service-layer imports); the instrumented points here are ``pool.begin``
(parent side), ``worker.batch`` and ``worker.turn`` (worker side).
"""

from __future__ import annotations

import time
import traceback
import weakref
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.batch import BatchContext, BatchMatchContext
from repro.core.config import SystemConfig
from repro.core.dual_side import DualSideSearchMatcher
from repro.core.naive import NaiveKineticTreeMatcher
from repro.core.single_side import SingleSideSearchMatcher
from repro.model.request import Request
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import (
    EngineStats,
    RoutingEngine,
    _TreeView,
    attach_shared_engine,
)
from repro.vehicles.fleet import (
    Fleet,
    ShardedFleetView,
    restore_vehicle,
    snapshot_vehicle,
)

try:  # pragma: no cover - exercised via parallel_available()
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

try:  # pragma: no cover
    import multiprocessing
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover
    multiprocessing = None
    _shm = None

__all__ = [
    "DEFAULT_IDLE_TIMEOUT",
    "DEFAULT_WORKER_TIMEOUT",
    "ParallelDispatchPool",
    "SharedArrayPack",
    "WorkerTimeoutError",
    "attach_shared_arrays",
    "parallel_available",
]

#: seconds of disuse after which the dispatcher tears a pool down
DEFAULT_IDLE_TIMEOUT = 300.0

#: default watchdog bound on a worker reply (seconds of silence on the pipe
#: before the worker is declared hung and killed)
DEFAULT_WORKER_TIMEOUT = 30.0

#: floor on the ready-wait at spawn time: cold-starting a worker (interpreter
#: boot, numpy import, segment attach) legitimately takes longer than a tight
#: ``worker_timeout``, which only measures in-batch reply silence
STARTUP_TIMEOUT = 120.0

#: how long ``close()`` waits for a polite exit before escalating
CLOSE_JOIN_TIMEOUT = 2.0

#: per-escalation-step join wait (after ``terminate()`` and after ``kill()``)
CLOSE_ESCALATION_TIMEOUT = 1.0


class WorkerTimeoutError(RuntimeError):
    """A pool worker sent no reply within ``worker_timeout`` seconds."""

#: matcher registry mirrored worker-side (the service layer keeps its own);
#: pools refuse to start for matchers outside it and fall back in-process
_MATCHERS = {
    SingleSideSearchMatcher.name: SingleSideSearchMatcher,
    DualSideSearchMatcher.name: DualSideSearchMatcher,
    NaiveKineticTreeMatcher.name: NaiveKineticTreeMatcher,
}


def parallel_available() -> bool:
    """``True`` when the zero-copy worker-pool machinery can run here.

    Requires NumPy, :mod:`multiprocessing.shared_memory` and the ``spawn``
    start method (fork would duplicate the parent's whole heap, defeating
    the zero-copy design and inheriting unsafe locks).
    """
    if _np is None or _shm is None or multiprocessing is None:
        return False
    try:
        multiprocessing.get_context("spawn")
    except ValueError:  # pragma: no cover - platform without spawn
        return False
    return True


def _release_segments(segments: List[object]) -> None:
    """Close and unlink shared-memory segments (idempotent, error-tolerant)."""
    for segment in segments:
        try:
            segment.close()
        except OSError:  # pragma: no cover - defensive
            pass
        try:
            segment.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass
    segments.clear()


class SharedArrayPack:
    """Named ndarrays published as shared-memory segments, owned by the parent.

    ``publish`` copies each array into a fresh segment exactly once; workers
    re-wrap the segments via :func:`attach_shared_arrays` without copying.
    The pack owns the segments: :meth:`close` (or garbage collection of the
    pack, via a ``weakref.finalize`` guard) closes *and unlinks* them, so no
    ``/dev/shm`` entry can outlive the process even on an unclean exit.
    """

    def __init__(self, segments: List[object], manifest: List[Tuple[str, str, str, tuple]]) -> None:
        self._segments = segments
        #: ``(logical name, segment name, dtype string, shape)`` per array --
        #: everything a worker needs to re-wrap the segment as an ndarray
        self.manifest = manifest
        self._finalizer = weakref.finalize(self, _release_segments, segments)

    @classmethod
    def publish(cls, arrays: Mapping[str, object]) -> "SharedArrayPack":
        """Copy ``arrays`` into fresh shared-memory segments.

        Raises:
            RuntimeError: when NumPy or ``shared_memory`` is unavailable.
            OSError: when the platform refuses the allocation.
        """
        if _np is None or _shm is None:
            raise RuntimeError("shared-memory publishing requires NumPy and multiprocessing.shared_memory")
        segments: List[object] = []
        manifest: List[Tuple[str, str, str, tuple]] = []
        try:
            for name, array in arrays.items():
                array = _np.ascontiguousarray(array)
                # A zero-length segment is an error on some platforms; keep a
                # 1-byte floor (the manifest's shape governs the view anyway).
                segment = _shm.SharedMemory(create=True, size=max(int(array.nbytes), 1))
                if array.size:
                    view = _np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)
                    view[...] = array
                segments.append(segment)
                manifest.append((name, segment.name, array.dtype.str, tuple(array.shape)))
        except Exception:
            _release_segments(segments)
            raise
        return cls(segments, manifest)

    @property
    def closed(self) -> bool:
        """``True`` once the segments have been closed and unlinked."""
        return not self._segments

    def close(self) -> None:
        """Close and unlink every segment (idempotent)."""
        self._finalizer()


def attach_shared_arrays(manifest: Sequence[Tuple[str, str, str, tuple]]):
    """Re-wrap published segments as read-only ndarrays (worker side).

    Returns ``(arrays, handles)``: the name -> ndarray mapping plus the live
    ``SharedMemory`` handles the views borrow their buffers from -- the
    caller must keep the handles referenced for as long as the arrays are
    used, and ``close()`` (never ``unlink()``; the parent owns the segments)
    each handle when done.
    """
    arrays: Dict[str, object] = {}
    handles: List[object] = []
    try:
        for name, segment_name, dtype_str, shape in manifest:
            segment = _shm.SharedMemory(name=segment_name)
            view = _np.ndarray(tuple(shape), dtype=_np.dtype(dtype_str), buffer=segment.buf)
            view.flags.writeable = False
            arrays[name] = view
            handles.append(segment)
    except Exception:
        for handle in handles:
            try:
                handle.close()
            except OSError:  # pragma: no cover
                pass
        raise
    return arrays, handles


def _safe_send(connection, message) -> bool:
    """Send on a pipe that may already be gone; ``False`` when it was."""
    try:
        connection.send(message)
        return True
    except (OSError, BrokenPipeError, ValueError):
        return False


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _worker_begin_batch(info: dict, engine: RoutingEngine, grid: GridIndex, fleet: Fleet) -> dict:
    """Install one batch's state in the worker: fleet mirror, views, contexts."""
    plane = None
    plane_handles: List[object] = []
    if info["plane_manifest"] is not None:
        plane_arrays, plane_handles = attach_shared_arrays(info["plane_manifest"])
        plane = plane_arrays["plane"]

    # Mirror the parent fleet for the shards this worker owns.  The shipped
    # per-shard lists follow the fleet's canonical sorted-by-id order, and
    # replace/remove clear grid registrations properly, so the mirror's grid
    # lists are exactly the parent's restricted to the owned vehicles.
    incoming: Dict[str, tuple] = {}
    for shard in sorted(info["shards"]):
        for snapshot in info["shards"][shard]:
            incoming[snapshot[0]] = snapshot
    for vehicle_id in fleet.vehicle_ids():
        if vehicle_id not in incoming:
            fleet.remove_vehicle(vehicle_id)
    for vehicle_id, snapshot in incoming.items():
        vehicle = restore_vehicle(snapshot)
        if vehicle_id in fleet:
            fleet.replace_vehicle(vehicle)
        else:
            fleet.add_vehicle(vehicle)
    shard_count = info["shard_count"]
    views = [
        (shard, ShardedFleetView(fleet, shard, shard_count))
        for shard in sorted(info["shards"])
    ]

    # Rebuild each request's pooled context.  When the parent shipped its
    # tree plane, the worker's start trees are views over the *same rows*
    # (zero-copy, bit-identical); otherwise trees are recomputed through the
    # attached engine, whose providers answer bit-identically by contract.
    graph = engine.graph if plane is not None else None
    trees: Dict[object, object] = {}
    shared_distances: Dict[tuple, float] = {}
    contexts: Dict[int, BatchMatchContext] = {}
    start_rows = info["start_rows"]
    for index, request in enumerate(info["requests"]):
        direct = info["directs"].get(index)
        if direct is None:  # endpoint error recorded parent-side; no turn comes
            continue
        start = request.start
        tree = trees.get(start)
        if tree is None:
            row = start_rows.get(start) if plane is not None else None
            if row is not None:
                tree = _TreeView(graph, plane[row])
            else:
                tree = engine.distances_from(start)
            trees[start] = tree
        contexts[index] = BatchMatchContext(
            request=request,
            engine=engine,
            grid=grid,
            direct=direct,
            start_tree=tree,
            shared_distances=shared_distances,
        )
    return {"contexts": contexts, "views": views, "plane_handles": plane_handles}


def _worker_release_batch(state: dict) -> dict:
    """Drop a finished batch's plane attachment and contexts."""
    for handle in state.get("plane_handles", ()):
        try:
            handle.close()
        except OSError:  # pragma: no cover
            pass
    return {"contexts": {}, "views": [], "plane_handles": []}


def _worker_main(connection, payload: dict, position: int = 0) -> None:
    """Worker-process entry point: attach, mirror, answer turn commands.

    Protocol (all replies tuple-tagged):
      ``("batch", info)``      -> ``("ok",)``
      ``("turn", i, dirty)``   -> ``("skylines", i, [(shard, options, s)], wall)``
      ``("finish",)``          -> ``("stats", matcher_delta, engine_delta)``
      ``("close",)``           -> process exits
    Any exception is reported as ``("error", traceback)`` instead of killing
    the protocol; the parent treats it as a pool failure and falls back.

    When the spawn payload carries ``fault_specs`` (the chaos harness was
    active in the parent), a :class:`repro.service.faults.FaultPlan` is
    rebuilt here and fired at ``worker.batch`` / ``worker.turn`` with this
    worker's position -- occurrence counters start at zero per spawn, so a
    schedule addresses "worker 1's third turn" deterministically.
    """
    fault_plan = None
    if payload.get("fault_specs"):
        from repro.service.faults import FaultPlan

        fault_plan = FaultPlan(payload["fault_specs"])
    handles: List[object] = []
    try:
        arrays, handles = attach_shared_arrays(payload["manifest"])
        network = payload["network"]
        engine = attach_shared_engine(
            payload["backend"],
            network,
            arrays,
            max_cached_sources=payload["max_cached_sources"],
            tree_provider=payload["tree_provider"],
        )
        grid = GridIndex(network, rows=payload["grid_rows"], columns=payload["grid_columns"])
        fleet = Fleet(grid, engine)
        matcher = _MATCHERS[payload["matcher_name"]](
            fleet, config=payload["config"], price_model=payload["price_model"]
        )
    except Exception:
        _safe_send(connection, ("error", traceback.format_exc()))
        return
    if not _safe_send(connection, ("ready",)):
        return

    engine_baseline = engine.stats.snapshot()
    matcher_baseline = matcher.statistics.as_dict()
    state = {"contexts": {}, "views": [], "plane_handles": []}
    while True:
        try:
            command = connection.recv()
        except (EOFError, OSError):
            break
        kind = command[0]
        try:
            if kind == "close":
                break
            if kind == "batch":
                if fault_plan is not None:
                    fault_plan.fire("worker.batch", position=position)
                state = _worker_release_batch(state)
                state = _worker_begin_batch(command[1], engine, grid, fleet)
                connection.send(("ok",))
            elif kind == "turn":
                if fault_plan is not None:
                    fault_plan.fire("worker.turn", position=position)
                index, dirty = command[1], command[2]
                started = time.perf_counter()
                for snapshot in dirty:
                    fleet.replace_vehicle(restore_vehicle(snapshot))
                context = state["contexts"][index]
                results = []
                for shard, view in state["views"]:
                    shard_started = time.perf_counter()
                    options = matcher.collect_shard(context, view)
                    results.append((shard, options, time.perf_counter() - shard_started))
                connection.send(("skylines", index, results, time.perf_counter() - started))
            elif kind == "finish":
                state = _worker_release_batch(state)
                engine_now = engine.stats.snapshot()
                matcher_now = matcher.statistics.as_dict()
                matcher_delta = {
                    key: matcher_now[key] - matcher_baseline.get(key, 0.0)
                    for key in matcher_now
                }
                connection.send(("stats", matcher_delta, engine_now.delta_since(engine_baseline)))
                engine_baseline, matcher_baseline = engine_now, matcher_now
            else:
                connection.send(("error", f"unknown command {kind!r}"))
        except Exception:
            if not _safe_send(connection, ("error", traceback.format_exc())):
                break
    _worker_release_batch(state)
    for handle in handles:
        try:
            handle.close()
        except OSError:  # pragma: no cover
            pass
    try:
        connection.close()
    except OSError:  # pragma: no cover
        pass


# ----------------------------------------------------------------------
# parent-side pool
# ----------------------------------------------------------------------
def _fold_matcher_delta(statistics, delta: Mapping[str, float]) -> None:
    """Fold a worker's matcher-counter delta into the parent's statistics.

    ``requests_answered`` / ``options_returned`` are excluded by design: the
    pipeline bills each rider request once, parent-side, after merging --
    worker ``collect_shard`` calls never bump them anyway.
    """
    statistics.vehicles_considered += int(delta.get("vehicles_considered", 0))
    statistics.vehicles_evaluated += int(delta.get("vehicles_evaluated", 0))
    statistics.vehicles_pruned += int(delta.get("vehicles_pruned", 0))
    statistics.cells_visited += int(delta.get("cells_visited", 0))
    insertion = statistics.insertion
    insertion.candidates_enumerated += int(delta.get("insertions_enumerated", 0))
    insertion.candidates_feasible += int(delta.get("insertions_feasible", 0))
    insertion.candidates_rejected_by_bounds += int(delta.get("insertions_rejected_by_bounds", 0))


class ParallelDispatchPool:
    """A persistent pool of worker processes running the collect/verify stage.

    One pool serves one (engine, matcher, worker-count) combination; the
    dispatcher recreates it when any of those change, when it breaks, or
    when it has sat idle past :attr:`idle_timeout`.  Lifecycle::

        pool.ensure_started()                  # lazy spawn + publish
        pool.begin_batch(requests, batch, ...) # ship fleet + plane + directs
        pool.collect(index)                    # one request's shard skylines
        pool.mark_dirty(fleet, vehicle)        # after each parent-side commit
        pool.finish_batch(mstats, estats)      # fold worker counters back
        pool.close()                           # join workers, unlink segments

    Every method degrades instead of raising: a failure marks the pool
    :attr:`broken` and returns a falsy value, and the dispatcher continues
    the very same batch in-process (the parent fleet is always current, so
    the fallback is byte-identical).
    """

    def __init__(
        self,
        engine: RoutingEngine,
        grid: GridIndex,
        config: SystemConfig,
        matcher_name: str,
        price_model: object,
        workers: int,
        idle_timeout: float = DEFAULT_IDLE_TIMEOUT,
        worker_timeout: Optional[float] = DEFAULT_WORKER_TIMEOUT,
    ) -> None:
        self._engine = engine
        self._grid = grid
        self._config = config
        self._matcher_name = matcher_name
        self._price_model = price_model
        self.workers = int(workers)
        self.idle_timeout = idle_timeout
        #: watchdog bound on each reply wait (``None`` waits forever)
        self.worker_timeout = worker_timeout
        #: hung-worker reply waits that expired (each one kills the worker)
        self.worker_timeouts = 0
        #: workers forcibly killed (watchdog expiries and close escalations)
        self.worker_kills = 0
        #: identity of the engine the published segments were exported from
        self.engine_token = id(engine)
        #: set on any failure; the pool never recovers, the dispatcher replaces it
        self.broken = False
        self.last_used = time.monotonic()
        #: lifetime wall seconds lost to cross-process shipping (payload
        #: pickling + turn round-trips minus the slowest worker's compute)
        self.ipc_seconds = 0.0
        self.batches_executed = 0
        self._pack: Optional[SharedArrayPack] = None
        self._plane_pack: Optional[SharedArrayPack] = None
        self._processes: List[tuple] = []
        self._started = False
        #: worker position -> {shard: snapshots} for the in-flight batch
        self._batch_active: Dict[int, Dict[int, list]] = {}
        self._batch_shard_count = 1
        #: worker position -> committed-vehicle snapshots awaiting shipment
        self._dirty: Dict[int, list] = {}

    # -- lifecycle -----------------------------------------------------
    def ensure_started(self) -> bool:
        """Spawn workers and publish the engine arrays (idempotent, lazy).

        Returns ``False`` -- and marks the pool broken so the dispatcher
        stops retrying -- whenever any precondition fails: no shared
        memory / spawn support, an engine without an export surface (the
        dict backend), an unknown matcher, or a worker failing to start.
        """
        if self.broken:
            return False
        if self._started:
            return True
        if self.workers < 2 or not parallel_available() or self._matcher_name not in _MATCHERS:
            self.broken = True
            return False
        arrays = self._engine.export_shared()
        if arrays is None:
            self.broken = True
            return False
        try:
            self._pack = SharedArrayPack.publish(arrays)
        except (RuntimeError, OSError, ValueError):
            self.broken = True
            return False
        from repro.service.faults import active_specs  # lazy: avoids an import cycle

        payload = {
            "manifest": self._pack.manifest,
            "backend": self._engine.backend,
            "tree_provider": getattr(self._engine, "_tree_provider_request", "auto"),
            "network": self._grid.network,
            "grid_rows": self._grid.rows,
            "grid_columns": self._grid.columns,
            "config": self._config,
            "price_model": self._price_model,
            "matcher_name": self._matcher_name,
            "max_cached_sources": getattr(self._engine, "_max_cached_sources", 1024),
            "fault_specs": active_specs(),
        }
        context = multiprocessing.get_context("spawn")
        try:
            for position in range(self.workers):
                parent_end, child_end = context.Pipe(duplex=True)
                process = context.Process(
                    target=_worker_main, args=(child_end, payload, position), daemon=True
                )
                process.start()
                child_end.close()
                self._processes.append((process, parent_end))
            startup_bound = None
            if self.worker_timeout is not None:
                startup_bound = max(self.worker_timeout, STARTUP_TIMEOUT)
            for position in range(len(self._processes)):
                # blocks until the worker finished attaching; bounded by the
                # startup floor, not the (possibly much tighter) batch watchdog
                reply = self._recv(position, timeout=startup_bound)
                if reply[0] != "ready":
                    raise RuntimeError(reply[1] if len(reply) > 1 else "worker failed to start")
        except Exception:
            self.close()
            self.broken = True
            return False
        self._started = True
        self.last_used = time.monotonic()
        return True

    # -- watchdog ------------------------------------------------------
    _UNSET = object()

    def _recv(self, position: int, timeout: object = _UNSET):
        """Receive one reply from a worker, bounded by :attr:`worker_timeout`.

        Every reply wait is a heartbeat check: a worker that sends nothing
        within the timeout is wedged (a crash would close the pipe and
        surface immediately as ``EOFError``), so it is killed on the spot --
        ``SIGKILL``, because a wedged process is exactly the one ignoring
        polite signals -- and :class:`WorkerTimeoutError` is raised for the
        caller's failure path to mark the pool broken and fall back.
        ``timeout`` overrides the per-pool bound for waits with different
        latency expectations (the spawn-time ready-wait); ``None`` disables
        the bound for that wait.
        """
        bound = self.worker_timeout if timeout is self._UNSET else timeout
        _, conn = self._processes[position]
        if bound is not None and not conn.poll(bound):
            self.worker_timeouts += 1
            self._kill_worker(position)
            raise WorkerTimeoutError(
                f"worker {position} sent no heartbeat for {bound:.1f}s"
            )
        return conn.recv()

    def _kill_worker(self, position: int) -> None:
        """SIGKILL one worker and reap it (counted in :attr:`worker_kills`)."""
        process, _ = self._processes[position]
        try:
            process.kill()
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        process.join(timeout=CLOSE_ESCALATION_TIMEOUT)
        self.worker_kills += 1

    def close(self) -> None:
        """Stop the workers and unlink every shared segment (idempotent).

        Escalates per worker: polite close message + join, then
        ``terminate()`` (SIGTERM), then ``kill()`` (SIGKILL) -- a wedged
        worker that ignores SIGTERM still cannot outlive the parent or keep
        the published ``/dev/shm`` segments referenced.
        """
        for _, conn in self._processes:
            _safe_send(conn, ("close",))
        for process, conn in self._processes:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
            process.join(timeout=CLOSE_JOIN_TIMEOUT)
            if process.is_alive():  # pragma: no cover - stuck worker
                process.terminate()
                process.join(timeout=CLOSE_ESCALATION_TIMEOUT)
            if process.is_alive():  # pragma: no cover - wedged worker
                process.kill()
                process.join(timeout=CLOSE_ESCALATION_TIMEOUT)
                self.worker_kills += 1
        self._processes = []
        self._started = False
        if self._plane_pack is not None:
            self._plane_pack.close()
            self._plane_pack = None
        if self._pack is not None:
            self._pack.close()
            self._pack = None

    # -- batch protocol ------------------------------------------------
    def begin_batch(self, request_list: Sequence[Request], batch: BatchContext, shard_count: int, fleet: Fleet) -> bool:
        """Ship one batch's fleet snapshots, tree plane and direct distances.

        Returns ``False`` (pool broken, no segments leaked) when anything
        fails; the caller then runs the whole batch in-process.
        """
        if not self.ensure_started():
            return False
        try:
            from repro.service.faults import fire as _fire_fault

            _fire_fault("pool.begin")  # chaos-harness hook: may raise FaultInjected
        except Exception:
            self.broken = True
            return False
        started = time.perf_counter()
        plane_manifest = None
        start_rows: Dict[object, int] = {}
        exported = batch.export_tree_plane()
        if exported is not None:
            plane, rows = exported
            try:
                self._plane_pack = SharedArrayPack.publish({"plane": plane})
                plane_manifest = self._plane_pack.manifest
                start_rows = rows
            except (RuntimeError, OSError, ValueError):
                self._plane_pack = None  # workers recompute trees instead
        directs = {
            index: batch.context_for(index).direct
            for index in range(len(request_list))
            if batch.error_for(index) is None
        }
        snapshots = fleet.shard_snapshots(shard_count)
        active: Dict[int, Dict[int, list]] = {}
        for shard in range(shard_count):
            position = shard % len(self._processes)
            active.setdefault(position, {})[shard] = snapshots[shard]
        self._batch_active = active
        self._batch_shard_count = shard_count
        self._dirty = {position: [] for position in active}
        try:
            for position, shards in active.items():
                self._processes[position][1].send(
                    (
                        "batch",
                        {
                            "plane_manifest": plane_manifest,
                            "start_rows": start_rows,
                            "requests": list(request_list),
                            "directs": directs,
                            "shard_count": shard_count,
                            "shards": shards,
                        },
                    )
                )
            for position in active:
                reply = self._recv(position)
                if reply[0] != "ok":
                    raise RuntimeError(reply[1] if len(reply) > 1 else "batch setup failed")
        except Exception:
            self.broken = True
            return False
        self.ipc_seconds += time.perf_counter() - started
        self.batches_executed += 1
        self.last_used = time.monotonic()
        return True

    def collect(self, index: int) -> Optional[Dict[int, Tuple[list, float]]]:
        """Run request ``index``'s collect/verify turn on the workers.

        Returns ``{shard: (options, shard_seconds)}`` covering every shard,
        or ``None`` on failure (pool broken; compute the turn locally).
        Queued dirty-vehicle snapshots ride along with each worker's turn
        command, so its mirror sees exactly the parent's pre-turn state.
        """
        if self.broken:
            return None
        started = time.perf_counter()
        try:
            for position in self._batch_active:
                self._processes[position][1].send(("turn", index, self._dirty.get(position, [])))
                self._dirty[position] = []
            results: Dict[int, Tuple[list, float]] = {}
            compute = 0.0
            for position in self._batch_active:
                reply = self._recv(position)
                if reply[0] != "skylines" or reply[1] != index:
                    raise RuntimeError(reply[1] if reply[0] == "error" else f"protocol desync at turn {index}")
                for shard, options, seconds in reply[2]:
                    results[shard] = (options, seconds)
                compute = max(compute, reply[3])
        except Exception:
            self.broken = True
            return None
        # The turn's IPC share: round-trip wall minus the slowest worker's
        # compute time (workers run concurrently, so that is the part the
        # parent actually waited on top of the work itself).
        self.ipc_seconds += max(0.0, (time.perf_counter() - started) - compute)
        self.last_used = time.monotonic()
        return results

    def mark_dirty(self, fleet: Fleet, vehicle) -> None:
        """Queue a committed vehicle's snapshot for its owning worker.

        Commits never move a vehicle, so its shard -- and therefore its
        worker -- is stable for the whole batch; only that one worker needs
        the refreshed state, with the next turn command.
        """
        if self.broken:
            return
        shard = fleet.shard_of_vehicle(vehicle, self._batch_shard_count)
        position = shard % len(self._processes)
        if position in self._dirty:
            self._dirty[position].append(snapshot_vehicle(vehicle))

    def finish_batch(self, matcher_statistics, engine_stats: EngineStats) -> None:
        """End the batch: fold worker counters back, drop the plane segment.

        Worker-side matcher and engine counters are accumulated into the
        parent's -- the aggregation across processes that keeps the E3/E10
        counter panels truthful under parallel dispatch.  A broken pool
        skips the fold (its workers' partial counters are lost with it).
        """
        if not self.broken:
            try:
                for position in self._batch_active:
                    self._processes[position][1].send(("finish",))
                for position in self._batch_active:
                    reply = self._recv(position)
                    if reply[0] != "stats":
                        raise RuntimeError(reply[1] if len(reply) > 1 else "finish failed")
                    _fold_matcher_delta(matcher_statistics, reply[1])
                    engine_stats.accumulate(reply[2])
            except Exception:
                self.broken = True
        if self._plane_pack is not None:
            self._plane_pack.close()
            self._plane_pack = None
        self._batch_active = {}
        self._dirty = {}
        self.last_used = time.monotonic()
