"""The naive kinetic-tree matcher (the baseline of Section 3.3).

"A naive method can be extended directly from the kinetic tree algorithm
[7]: we evaluate every vehicle to find all possible pairs of pick-up time and
price that cannot dominate each other when inserting the request into its
kinetic tree."

The naive matcher therefore

* verifies **every** vehicle of the fleet (no grid pruning), and
* computes every shortest-path distance exactly during verification (no
  lower-bound short-circuiting), mirroring the remark that the kinetic-tree
  algorithm "calculates all the distances before verification".

It is the correctness reference the optimized matchers are property-tested
against, and the baseline of experiment E3.
"""

from __future__ import annotations

from typing import List

from repro.core.context import MatchContext
from repro.core.matcher import Matcher
from repro.model.options import RideOption

__all__ = ["NaiveKineticTreeMatcher"]


class NaiveKineticTreeMatcher(Matcher):
    """Evaluate every vehicle, with no pruning and no bound-based rejection."""

    name = "naive"

    def _collect_options(self, context: MatchContext, fleet) -> List[RideOption]:
        options: List[RideOption] = []
        for vehicle in fleet.vehicles():
            self.statistics.vehicles_considered += 1
            options.extend(self._verify_vehicle(vehicle, context, use_bound_rejection=False))
        return options
