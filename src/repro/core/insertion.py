"""Inserting a request into a vehicle's kinetic tree.

For every branch (valid schedule) of a vehicle's kinetic tree and every
position pair, the candidate schedule obtained by inserting the request's
pick-up and drop-off stops is checked against the four validity conditions of
Definition 2.  Each feasible candidate yields

* its pick-up distance ``dist_pt`` (travel distance from the vehicle's current
  location to the request start along the candidate schedule), and
* its *added distance* ``dist(tr_j) - dist(tr_i)`` relative to the branch it
  was inserted into,

which the matchers turn into ``<vehicle, time, price>`` options.

Section 3.3 of the paper notes that the number of shortest-path computations
can be reduced compared to the plain kinetic-tree algorithm "by estimating
the lower and upper bounds of the shortest path distance".  When a grid index
is supplied, this module short-circuits candidates whose *lower-bound*
distances already violate a constraint, skipping their exact evaluation; the
exact check still runs for every candidate that survives, so the result set
is identical with and without the grid (property-tested).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.model.request import Request
from repro.model.stops import Stop, StopKind
from repro.roadnet.grid_index import GridIndex
from repro.roadnet.routing import RoutingEngine
from repro.vehicles.schedule import (
    RequestState,
    check_schedule,
    enumerate_insertions,
    evaluate_schedule,
    schedule_distance,
)
from repro.vehicles.vehicle import Vehicle

__all__ = ["InsertionCandidate", "insertion_candidates", "InsertionStatistics"]


@dataclass(frozen=True)
class InsertionCandidate:
    """One feasible way of serving a request with a particular vehicle."""

    vehicle_id: str
    schedule: Tuple[Stop, ...]
    base_schedule: Tuple[Stop, ...]
    pickup_distance: float
    added_distance: float
    total_distance: float

    def __post_init__(self) -> None:
        if self.pickup_distance < 0:
            raise ValueError("pickup_distance must be non-negative")


@dataclass
class InsertionStatistics:
    """Counters describing how much work an insertion call performed."""

    candidates_enumerated: int = 0
    candidates_feasible: int = 0
    candidates_rejected_by_bounds: int = 0

    def merge(self, other: "InsertionStatistics") -> None:
        """Accumulate another call's counters into this one."""
        self.candidates_enumerated += other.candidates_enumerated
        self.candidates_feasible += other.candidates_feasible
        self.candidates_rejected_by_bounds += other.candidates_rejected_by_bounds


def insertion_candidates(
    vehicle: Vehicle,
    request: Request,
    oracle: RoutingEngine,
    grid: Optional[GridIndex] = None,
    statistics: Optional[InsertionStatistics] = None,
    direct: Optional[float] = None,
    distance: Optional[Callable[[int, int], float]] = None,
) -> List[InsertionCandidate]:
    """Return every feasible insertion of ``request`` into ``vehicle``.

    Args:
        vehicle: the candidate vehicle.
        request: the request to insert.
        oracle: routing engine (exact distances); a bare ``DistanceOracle``
            works too, only ``.distance`` is used.
        grid: optional grid index; when provided, candidates whose
            lower-bound distances already violate the waiting-time or service
            constraint are rejected without exact evaluation.
        statistics: optional counter object updated in place.
        direct: the request's direct distance when the caller (a matcher with
            a :class:`~repro.core.context.MatchContext`) already computed it;
            recomputed otherwise.
        distance: exact-distance callable overriding ``oracle.distance``
            (the matchers pass ``MatchContext.distance`` so start-rooted legs
            come from the pinned request tree).

    Returns:
        Feasible candidates; empty when the vehicle cannot serve the request.
    """
    stats = statistics if statistics is not None else InsertionStatistics()
    distance_fn = distance if distance is not None else oracle.distance
    if vehicle.has_request(request.request_id):
        # The vehicle already serves this request (or a different request that
        # reuses its identifier); re-inserting it would corrupt the constraint
        # bookkeeping, so the vehicle simply offers nothing.
        return []
    if direct is None:
        direct = distance_fn(request.start, request.destination)

    pickup_stop = Stop(
        vertex=request.start,
        request_id=request.request_id,
        kind=StopKind.PICKUP,
        riders=request.riders,
    )
    dropoff_stop = Stop(
        vertex=request.destination,
        request_id=request.request_id,
        kind=StopKind.DROPOFF,
        riders=request.riders,
    )

    # The new request's waiting-time condition cannot bind at matching time:
    # the planned pick-up *is* the one being computed.  An infinite remaining
    # planned distance encodes that.
    request_states: Dict[str, RequestState] = dict(vehicle.request_states())
    request_states[request.request_id] = RequestState(
        request=request,
        onboard=False,
        direct_distance=direct,
        planned_pickup_remaining=math.inf,
        travelled_since_pickup=0.0,
    )

    base_schedules: List[Tuple[Stop, ...]] = vehicle.kinetic_tree.schedules() or [()]
    onboard_riders = vehicle.occupancy
    origin = vehicle.location
    origin_offset = vehicle.offset
    results: List[InsertionCandidate] = []
    seen: Dict[Tuple[Stop, ...], None] = {}

    for base in base_schedules:
        base_total = schedule_distance(origin, base, distance_fn, origin_offset)
        for candidate in enumerate_insertions(base, pickup_stop, dropoff_stop):
            if candidate in seen:
                continue
            seen[candidate] = None
            stats.candidates_enumerated += 1
            if grid is not None and _rejected_by_lower_bounds(
                origin, origin_offset, candidate, request_states, grid
            ):
                stats.candidates_rejected_by_bounds += 1
                continue
            metrics = evaluate_schedule(origin, candidate, distance_fn, origin_offset)
            feasibility = check_schedule(
                origin=origin,
                stops=candidate,
                capacity=vehicle.capacity,
                onboard_riders=onboard_riders,
                request_states=request_states,
                distance=distance_fn,
                origin_offset=origin_offset,
                metrics=metrics,
            )
            if not feasibility:
                continue
            stats.candidates_feasible += 1
            results.append(
                InsertionCandidate(
                    vehicle_id=vehicle.vehicle_id,
                    schedule=candidate,
                    base_schedule=tuple(base),
                    pickup_distance=metrics.pickup_distance[request.request_id],
                    added_distance=max(0.0, metrics.total_distance - base_total),
                    total_distance=metrics.total_distance,
                )
            )
    return results


def feasible_schedules_for_commit(
    vehicle: Vehicle,
    request: Request,
    oracle: RoutingEngine,
    grid: Optional[GridIndex] = None,
) -> List[Tuple[Stop, ...]]:
    """Return every feasible new schedule, for installing into the kinetic tree.

    This is what the dispatcher calls once a rider accepts an option: the
    vehicle's kinetic tree must afterwards contain *all* valid schedules over
    its (now extended) request set, not just the schedule of the chosen
    option.
    """
    return [candidate.schedule for candidate in insertion_candidates(vehicle, request, oracle, grid)]


def _rejected_by_lower_bounds(
    origin: int,
    origin_offset: float,
    stops: Sequence[Stop],
    request_states: Dict[str, RequestState],
    grid: GridIndex,
) -> bool:
    """Return ``True`` when grid lower bounds alone prove the schedule infeasible.

    The check mirrors the waiting-time and service conditions of
    :func:`repro.vehicles.schedule.check_schedule` but replaces every exact
    shortest-path distance with the (cheaper) grid lower bound.  Because the
    bounds never exceed the true distances, a violation here implies a
    violation of the exact check, so rejecting is safe.

    This runs once per enumerated candidate schedule (hundreds of thousands
    of times per dispatch batch), so it is a single pass that returns at the
    *first* provable violation: every per-stop condition only needs the
    bound-prefix up to that stop, and a pick-up's waiting-time condition is
    decidable the moment the pick-up is reached.
    """
    bound = grid.distance_lower_bound
    states_get = request_states.get
    total = origin_offset
    previous = origin
    pickup_at: Dict[str, float] = {}
    for stop in stops:
        vertex = stop.vertex
        total += bound(previous, vertex)
        previous = vertex
        request_id = stop.request_id
        if stop.is_pickup:
            pickup_at[request_id] = total
            state = states_get(request_id)
            if (
                state is not None
                and not state.onboard
                and total > state.waiting_budget() + 1e-9
            ):
                return True
        else:
            state = states_get(request_id)
            if state is None:
                continue
            if state.onboard:
                travelled_lb = total
            elif request_id in pickup_at:
                travelled_lb = total - pickup_at[request_id]
            else:
                continue
            if travelled_lb > state.remaining_service_budget() + 1e-9:
                return True
    return False
