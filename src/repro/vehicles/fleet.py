"""The vehicle index of PTRider.

The grid index of Section 3.2.1 keeps, per grid cell, an *empty vehicle list*
(vehicles without assigned requests currently located in the cell) and a
*non-empty vehicle list* (vehicles whose trip schedule intersects the cell).
:class:`Fleet` owns the vehicles and keeps those per-cell lists in sync with
vehicle state: every time a vehicle moves, is assigned a request, picks up or
drops off riders, the dispatcher (or the simulation engine) calls
:meth:`Fleet.refresh_vehicle`.

Registration granularity
------------------------
The paper registers a non-empty vehicle with every cell its kinetic-tree
*edges* intersect (i.e. every cell crossed by the shortest path between two
consecutive stops).  Expanding every schedule leg into its full vertex path
is expensive and is only needed to make destination-side pruning slightly
tighter, so the default here registers a non-empty vehicle with the cells of
its current location and of its schedule stops.  Construct the fleet with
``register_full_paths=True`` to reproduce the paper's exact behaviour; the
matchers are correct under both settings (see ``DESIGN.md``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Set

from repro.errors import UnknownVehicleError, VehicleError
from repro.roadnet.grid_index import CellId, GridIndex
from repro.roadnet.routing import RoutingEngine, ensure_engine, make_engine
from repro.vehicles.kinetic_tree import KineticTree
from repro.vehicles.vehicle import Vehicle

__all__ = [
    "Fleet",
    "ShardedFleetView",
    "shard_of_cell",
    "snapshot_vehicle",
    "restore_vehicle",
]


def shard_of_cell(cell_id: CellId, columns: int, shard_count: int) -> int:
    """Shard index of a grid cell: row-major cell index modulo ``shard_count``."""
    row, column = cell_id
    return (row * columns + column) % shard_count


def snapshot_vehicle(vehicle: Vehicle) -> tuple:
    """A pickle-lean snapshot of one vehicle's dispatch-relevant state.

    The parallel dispatch pool ships these instead of :class:`Vehicle`
    objects: the payload is a flat tuple of frozen dataclasses and
    primitives (no grid registrations, no back-references), so pickling
    stays cheap and the restored vehicle is state-identical for every
    check the matchers run (waiting/onboard budgets, kinetic tree,
    assignment order).
    """
    return (
        vehicle.vehicle_id,
        vehicle.location,
        vehicle.capacity,
        vehicle.offset,
        vehicle.waiting_requests,
        vehicle.onboard_requests,
        vehicle.unfinished_request_ids(),
        vehicle.current_schedules(),
        vehicle.distance_driven,
        vehicle.occupied_distance,
    )


def restore_vehicle(payload: tuple) -> Vehicle:
    """Rebuild a :class:`Vehicle` from a :func:`snapshot_vehicle` payload."""
    (
        vehicle_id,
        location,
        capacity,
        offset,
        waiting,
        onboard,
        order,
        schedules,
        distance_driven,
        occupied_distance,
    ) = payload
    vehicle = Vehicle(vehicle_id, location=location, capacity=capacity, offset=offset)
    vehicle._waiting = dict(waiting)
    vehicle._onboard = dict(onboard)
    vehicle._assignment_order = list(order)
    if schedules:
        vehicle.kinetic_tree = KineticTree(root_location=location, schedules=schedules)
    vehicle.distance_driven = distance_driven
    vehicle.occupied_distance = occupied_distance
    return vehicle


class Fleet:
    """Container of every vehicle plus the per-cell vehicle lists.

    Args:
        grid: the grid index of the road network.
        oracle: the routing engine answering shortest-path queries (used by
            the matchers, the dispatcher and, when ``register_full_paths`` is
            on, the cell registration).  A bare
            :class:`~repro.roadnet.shortest_path.DistanceOracle` is accepted
            and wrapped into the "dict" engine; ``None`` builds one from
            ``routing``.
        register_full_paths: register non-empty vehicles with every cell their
            schedule legs cross (paper behaviour) instead of only the cells of
            their stops.
        routing: backend name used when no ``oracle`` is given ("dict",
            "csr" or "csr+alt").
    """

    def __init__(
        self,
        grid: GridIndex,
        oracle: object = None,
        register_full_paths: bool = False,
        routing: Optional[str] = None,
    ) -> None:
        self._grid = grid
        if oracle is None and routing is not None:
            self._engine: RoutingEngine = make_engine(grid.network, routing)
        else:
            self._engine = ensure_engine(oracle, grid.network)
        self._register_full_paths = register_full_paths
        self._vehicles: Dict[str, Vehicle] = {}

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vehicles)

    def __iter__(self) -> Iterator[Vehicle]:
        return iter(self._vehicles.values())

    def __contains__(self, vehicle_id: object) -> bool:
        return vehicle_id in self._vehicles

    @property
    def grid(self) -> GridIndex:
        """The grid index the fleet is registered in."""
        return self._grid

    @property
    def routing_engine(self) -> RoutingEngine:
        """The routing engine shared with the matchers."""
        return self._engine

    @property
    def oracle(self) -> RoutingEngine:
        """Backwards-compatible alias for :attr:`routing_engine`."""
        return self._engine

    def set_routing_engine(self, engine: RoutingEngine) -> None:
        """Swap the routing engine (admin panel routing-backend changes).

        Matchers and dispatchers built before the swap keep the old engine;
        the service layer rebuilds them right after calling this.
        """
        if engine.network is not self._grid.network:
            raise VehicleError("the new routing engine must answer on the fleet's road network")
        self._engine = engine

    def vehicle_ids(self) -> List[str]:
        """Return every registered vehicle id."""
        return list(self._vehicles)

    def get(self, vehicle_id: str) -> Vehicle:
        """Return the vehicle with ``vehicle_id``.

        Raises:
            UnknownVehicleError: when the vehicle is not registered.
        """
        try:
            return self._vehicles[vehicle_id]
        except KeyError:
            raise UnknownVehicleError(vehicle_id) from None

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def add_vehicle(self, vehicle: Vehicle) -> None:
        """Register a vehicle and place it in the grid lists.

        Raises:
            VehicleError: when a vehicle with the same id already exists.
        """
        if vehicle.vehicle_id in self._vehicles:
            raise VehicleError(f"vehicle {vehicle.vehicle_id} is already registered")
        self._vehicles[vehicle.vehicle_id] = vehicle
        self.refresh_vehicle(vehicle.vehicle_id)

    def remove_vehicle(self, vehicle_id: str) -> Vehicle:
        """Unregister a vehicle and clear its grid entries.

        Raises:
            UnknownVehicleError: when the vehicle is not registered.
        """
        vehicle = self.get(vehicle_id)
        self._clear_cells(vehicle)
        del self._vehicles[vehicle_id]
        return vehicle

    def replace_vehicle(self, vehicle: Vehicle) -> None:
        """Swap in a refreshed copy of an already-registered vehicle.

        The parallel dispatch pool's workers keep mirror fleets in sync by
        replacing each committed vehicle with its restored snapshot: the old
        object's grid registrations are cleared, the new object takes its
        slot and is re-registered.  Commits never move a vehicle, so shard
        ownership is unchanged by construction.

        Raises:
            UnknownVehicleError: when no vehicle with that id is registered.
        """
        old = self.get(vehicle.vehicle_id)
        self._clear_cells(old)
        self._vehicles[vehicle.vehicle_id] = vehicle
        self.refresh_vehicle(vehicle.vehicle_id)

    def restore_vehicles(self, vehicles: Iterable[Vehicle]) -> None:
        """Make the fleet hold exactly ``vehicles`` (snapshot restore).

        Vehicles already registered under the same id are swapped through
        :meth:`replace_vehicle` (their grid entries refreshed), new ids are
        added, and ids absent from ``vehicles`` are removed -- so a recovery
        restore lands on the snapshot's fleet regardless of what the
        freshly built service started with.
        """
        wanted: Dict[str, Vehicle] = {}
        for vehicle in vehicles:
            wanted[vehicle.vehicle_id] = vehicle
        for vehicle_id in list(self._vehicles):
            if vehicle_id not in wanted:
                self.remove_vehicle(vehicle_id)
        for vehicle_id, vehicle in wanted.items():
            if vehicle_id in self._vehicles:
                self.replace_vehicle(vehicle)
            else:
                self.add_vehicle(vehicle)

    def refresh_vehicle(self, vehicle_id: str) -> None:
        """Re-register ``vehicle_id`` in the grid lists after a state change.

        Call this whenever the vehicle's location changed cell, a request was
        assigned / picked up / dropped off, or its kinetic tree changed.
        """
        vehicle = self.get(vehicle_id)
        self._clear_cells(vehicle)
        if vehicle.is_empty:
            cell_id = self._grid.register_empty_vehicle(vehicle.vehicle_id, vehicle.location)
            vehicle.registered_cells = {cell_id}
            return
        cells = self._schedule_cells(vehicle)
        self._grid.register_nonempty_vehicle(vehicle.vehicle_id, cells)
        vehicle.registered_cells = set(cells)

    def _clear_cells(self, vehicle: Vehicle) -> None:
        if not vehicle.registered_cells:
            return
        if vehicle.is_empty:
            # The vehicle may have just transitioned; clear it from both list
            # kinds to stay consistent regardless of its previous state.
            for cell_id in vehicle.registered_cells:
                self._grid.unregister_empty_vehicle(vehicle.vehicle_id, cell_id)
                self._grid.unregister_nonempty_vehicle(vehicle.vehicle_id, [cell_id])
        else:
            for cell_id in vehicle.registered_cells:
                self._grid.unregister_empty_vehicle(vehicle.vehicle_id, cell_id)
            self._grid.unregister_nonempty_vehicle(vehicle.vehicle_id, vehicle.registered_cells)
        vehicle.registered_cells = set()

    def _schedule_cells(self, vehicle: Vehicle) -> Set[CellId]:
        """Cells a non-empty vehicle must be registered in."""
        vertices: Set[int] = {vehicle.location}
        schedules = vehicle.kinetic_tree.schedules()
        for schedule in schedules:
            for stop in schedule:
                vertices.add(stop.vertex)
        if self._register_full_paths and schedules:
            # Expand the best schedule's legs into full vertex paths, so every
            # crossed cell is covered (paper behaviour).
            best = vehicle.kinetic_tree.best_schedule(self._engine.distance, vehicle.offset)
            previous = vehicle.location
            for stop in best or ():
                result = self._engine.path(previous, stop.vertex)
                vertices.update(result.path)
                previous = stop.vertex
        return self._grid.cells_on_path(sorted(vertices))

    # ------------------------------------------------------------------
    # queries used by the matchers
    # ------------------------------------------------------------------
    def empty_vehicles_in_cell(self, cell_id: CellId) -> List[Vehicle]:
        """Return the empty vehicles registered in ``cell_id``."""
        cell = self._grid.cell(cell_id)
        return [self._vehicles[vid] for vid in sorted(cell.empty_vehicles) if vid in self._vehicles]

    def nonempty_vehicles_in_cell(self, cell_id: CellId) -> List[Vehicle]:
        """Return the non-empty vehicles registered in ``cell_id``."""
        cell = self._grid.cell(cell_id)
        return [self._vehicles[vid] for vid in sorted(cell.nonempty_vehicles) if vid in self._vehicles]

    def vehicles(self) -> List[Vehicle]:
        """Return every vehicle (sorted by id, for deterministic iteration)."""
        return [self._vehicles[vid] for vid in sorted(self._vehicles)]

    def empty_vehicles(self) -> List[Vehicle]:
        """Return every empty vehicle."""
        return [vehicle for vehicle in self.vehicles() if vehicle.is_empty]

    def nonempty_vehicles(self) -> List[Vehicle]:
        """Return every non-empty vehicle."""
        return [vehicle for vehicle in self.vehicles() if not vehicle.is_empty]

    def occupancy_statistics(self) -> Dict[str, float]:
        """Return aggregate fleet statistics (for the website admin view)."""
        vehicles = self.vehicles()
        if not vehicles:
            return {"vehicles": 0.0, "empty": 0.0, "nonempty": 0.0, "average_occupancy": 0.0}
        empty = sum(1 for vehicle in vehicles if vehicle.is_empty)
        total_occupancy = sum(vehicle.occupancy for vehicle in vehicles)
        return {
            "vehicles": float(len(vehicles)),
            "empty": float(empty),
            "nonempty": float(len(vehicles) - empty),
            "average_occupancy": total_occupancy / len(vehicles),
        }

    # ------------------------------------------------------------------
    # sharding (batch dispatch pipeline)
    # ------------------------------------------------------------------
    def shard_of_vehicle(self, vehicle: Vehicle, shard_count: int) -> int:
        """Return the index of the shard that owns ``vehicle``.

        Ownership is decided by the vehicle's *current-location* grid cell
        (row-major cell index modulo ``shard_count``).  Because commits never
        move a vehicle, ownership is stable for the whole lifetime of a
        dispatch batch, which lets the pipeline invalidate exactly one shard
        per commit.
        """
        if shard_count <= 1:
            return 0
        cell_id = self._grid.cell_of_vertex(vehicle.location).cell_id
        return shard_of_cell(cell_id, self._grid.columns, shard_count)

    def shard_views(self, shard_count: int) -> List["ShardedFleetView"]:
        """Partition the fleet into ``shard_count`` disjoint read-only views.

        Every vehicle belongs to exactly one view (see
        :meth:`shard_of_vehicle`), so per-shard matching verifies each vehicle
        exactly once and the union of the per-shard options equals the options
        a single matcher would produce over the whole fleet.
        """
        if shard_count < 1:
            raise VehicleError(f"shard_count must be >= 1, got {shard_count}")
        return [ShardedFleetView(self, shard, shard_count) for shard in range(shard_count)]

    def shard_snapshots(self, shard_count: int) -> Dict[int, List[tuple]]:
        """Snapshot every vehicle, grouped by owning shard (worker shipping).

        The per-shard lists are sorted by vehicle id (the fleet's canonical
        iteration order), so a worker re-adding them reproduces the parent's
        deterministic registration sequence.
        """
        shards: Dict[int, List[tuple]] = {shard: [] for shard in range(shard_count)}
        for vehicle in self.vehicles():
            shard = self.shard_of_vehicle(vehicle, shard_count)
            shards[shard].append(snapshot_vehicle(vehicle))
        return shards

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Fleet(vehicles={len(self._vehicles)}, grid={self._grid!r})"


class ShardedFleetView:
    """A read-only slice of a :class:`Fleet` restricted to one shard.

    The view exposes exactly the query surface the matchers consume
    (``empty_vehicles_in_cell`` / ``nonempty_vehicles_in_cell`` / ``vehicles``
    plus the shared grid and routing engine), filtered down to the vehicles
    the shard owns.  A matcher handed a view instead of the fleet therefore
    produces the skyline over that shard's vehicles only; the batch pipeline
    merges the per-shard skylines by dominance
    (:meth:`repro.model.options.Skyline.merge`).

    Vehicles are partitioned by their current-location grid cell, so a
    non-empty vehicle whose schedule stops span several cells is still seen by
    exactly one shard -- no cross-shard duplicate verification, and a commit
    dirties only the committed vehicle's own shard.
    """

    __slots__ = ("_fleet", "_shard", "_shard_count")

    def __init__(self, fleet: Fleet, shard: int, shard_count: int) -> None:
        if shard_count < 1:
            raise VehicleError(f"shard_count must be >= 1, got {shard_count}")
        if not 0 <= shard < shard_count:
            raise VehicleError(f"shard must be in [0, {shard_count}), got {shard}")
        self._fleet = fleet
        self._shard = shard
        self._shard_count = shard_count

    # -- identity ------------------------------------------------------
    @property
    def fleet(self) -> Fleet:
        """The underlying (whole) fleet."""
        return self._fleet

    @property
    def shard(self) -> int:
        """This view's shard index."""
        return self._shard

    @property
    def shard_count(self) -> int:
        """Total number of shards in the partition."""
        return self._shard_count

    def owns(self, vehicle: Vehicle) -> bool:
        """``True`` when this shard is responsible for ``vehicle``."""
        return self._fleet.shard_of_vehicle(vehicle, self._shard_count) == self._shard

    # -- the matcher-facing query surface ------------------------------
    @property
    def grid(self) -> GridIndex:
        """The grid index shared with the whole fleet."""
        return self._fleet.grid

    @property
    def routing_engine(self) -> RoutingEngine:
        """The routing engine shared with the whole fleet."""
        return self._fleet.routing_engine

    @property
    def oracle(self) -> RoutingEngine:
        """Backwards-compatible alias for :attr:`routing_engine`."""
        return self._fleet.routing_engine

    def get(self, vehicle_id: str) -> Vehicle:
        """Return a vehicle by id (shard membership is not enforced here)."""
        return self._fleet.get(vehicle_id)

    def owns_cell(self, cell_id: CellId) -> bool:
        """``True`` when vehicles *located* in ``cell_id`` belong to this shard."""
        return (
            self._shard_count <= 1
            or shard_of_cell(cell_id, self._fleet.grid.columns, self._shard_count)
            == self._shard
        )

    def empty_vehicles_in_cell(self, cell_id: CellId) -> List[Vehicle]:
        """The shard's empty vehicles registered in ``cell_id``.

        An empty vehicle is registered exactly in its location cell, so the
        whole list is kept or skipped by the cell's shard -- no per-vehicle
        ownership checks.
        """
        if not self.owns_cell(cell_id):
            return []
        return self._fleet.empty_vehicles_in_cell(cell_id)

    def nonempty_vehicles_in_cell(self, cell_id: CellId) -> List[Vehicle]:
        """The shard's non-empty vehicles registered in ``cell_id``.

        Non-empty vehicles register in every cell their schedule stops touch,
        so membership is decided per vehicle by its location cell.
        """
        if self._shard_count <= 1:
            return self._fleet.nonempty_vehicles_in_cell(cell_id)
        return [v for v in self._fleet.nonempty_vehicles_in_cell(cell_id) if self.owns(v)]

    def vehicles(self) -> List[Vehicle]:
        """Every vehicle the shard owns (sorted by id)."""
        return [v for v in self._fleet.vehicles() if self.owns(v)]

    def empty_vehicles(self) -> List[Vehicle]:
        """The shard's empty vehicles."""
        return [v for v in self.vehicles() if v.is_empty]

    def nonempty_vehicles(self) -> List[Vehicle]:
        """The shard's non-empty vehicles."""
        return [v for v in self.vehicles() if not v.is_empty]

    def __len__(self) -> int:
        return len(self.vehicles())

    def __iter__(self) -> Iterator[Vehicle]:
        return iter(self.vehicles())

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"ShardedFleetView(shard={self._shard}/{self._shard_count}, fleet={self._fleet!r})"
