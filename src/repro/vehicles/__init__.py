"""Vehicle substrate: vehicle state, kinetic trees, the fleet index and motion.

* :mod:`repro.vehicles.schedule` -- trip-schedule feasibility machinery
  (capacity, point order, waiting time and service constraints of
  Definition 2);
* :mod:`repro.vehicles.kinetic_tree` -- the kinetic tree of all valid trip
  schedules (Section 3.2.2 / Fig. 3);
* :mod:`repro.vehicles.vehicle` -- mutable per-vehicle state: location,
  assigned requests, occupancy;
* :mod:`repro.vehicles.fleet` -- the vehicle index: per-grid-cell empty and
  non-empty vehicle lists, kept in sync with vehicle state;
* :mod:`repro.vehicles.movement` -- constant-speed motion along shortest
  paths and the idle random-walk behaviour of Section 4.
"""

from repro.vehicles.fleet import Fleet
from repro.vehicles.kinetic_tree import KineticTree, KineticTreeNode
from repro.vehicles.schedule import (
    FeasibilityResult,
    RequestState,
    ScheduleMetrics,
    check_schedule,
    enumerate_insertions,
    evaluate_schedule,
)
from repro.vehicles.vehicle import Vehicle
from repro.vehicles.movement import MotionState, plan_route, step_along_route

__all__ = [
    "FeasibilityResult",
    "Fleet",
    "KineticTree",
    "KineticTreeNode",
    "MotionState",
    "RequestState",
    "ScheduleMetrics",
    "Vehicle",
    "check_schedule",
    "enumerate_insertions",
    "evaluate_schedule",
    "plan_route",
    "step_along_route",
]
