"""Kinetic trees of valid vehicle trip schedules (Section 3.2.2, Fig. 3).

A vehicle with ``k`` unfinished requests generally has many valid orders in
which it can visit the outstanding pick-ups and drop-offs.  Following Huang
et al. (the *Noah* system, reference [7] of the paper) PTRider keeps **all**
valid orders per vehicle, organised as a tree whose root is the vehicle's
current location and whose branches are the valid schedules.  The paper adds
three annotations to every tree node:

* the vehicle's occupancy after the node's stop,
* the minimum remaining detour slack over the requests still being served,
* ``dist_tr`` -- the travel distance from the current location to the node.

:class:`KineticTree` stores the schedule set (the authoritative data) and
materialises the annotated prefix-sharing tree on demand for inspection, the
website interface and the benchmarks.  Keeping the schedule set explicit makes
insertion, pruning and arrival handling straightforward and testable; the
combinatorial size is bounded in practice by the vehicle capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidScheduleError
from repro.model.stops import Stop, StopKind
from repro.vehicles.schedule import (
    DistanceFunction,
    RequestState,
    evaluate_schedule,
    schedule_distance,
)

__all__ = ["KineticTreeNode", "KineticTree"]


@dataclass
class KineticTreeNode:
    """One node of the materialised kinetic tree.

    Attributes:
        stop: the stop represented by the node (``None`` for the root, which
            stands for the vehicle's current location).
        occupancy: riders on board immediately after serving the stop.
        dist_from_root: travel distance from the vehicle's current location.
        detour_slack: minimum remaining detour budget over every request
            served on the path from the root to this node (the paper's
            "minimal detour distance allowed").
        children: child nodes, one per distinct next stop.
    """

    stop: Optional[Stop]
    occupancy: int = 0
    dist_from_root: float = 0.0
    detour_slack: float = float("inf")
    children: List["KineticTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """``True`` when the node ends a schedule."""
        return not self.children

    def node_count(self) -> int:
        """Total number of nodes in the subtree rooted here (including self)."""
        return 1 + sum(child.node_count() for child in self.children)

    def branch_count(self) -> int:
        """Number of leaves (i.e. schedules) below this node."""
        if self.is_leaf:
            return 1
        return sum(child.branch_count() for child in self.children)

    def iter_branches(self) -> Iterable[Tuple[Stop, ...]]:
        """Yield every root-to-leaf stop sequence of the subtree."""
        if self.is_leaf:
            yield tuple() if self.stop is None else (self.stop,)
            return
        for child in self.children:
            for branch in child.iter_branches():
                if self.stop is None:
                    yield branch
                else:
                    yield (self.stop,) + branch


class KineticTree:
    """The set of all valid trip schedules of one vehicle.

    The tree is rooted at the vehicle's current location; every schedule is a
    tuple of :class:`~repro.model.stops.Stop` objects.  An *empty* tree (no
    schedules other than the trivial empty one) corresponds to an empty
    vehicle.

    The class is deliberately ignorant of feasibility rules: callers (the
    insertion module and the dispatcher) decide which schedules are valid and
    hand them over via :meth:`set_schedules` / :meth:`replace`.
    """

    def __init__(self, root_location: int, schedules: Optional[Iterable[Sequence[Stop]]] = None) -> None:
        self._root_location = root_location
        self._schedules: List[Tuple[Stop, ...]] = []
        if schedules is not None:
            self.set_schedules(schedules)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def root_location(self) -> int:
        """The vehicle's current location (the root of the tree)."""
        return self._root_location

    def set_root_location(self, vertex: int) -> None:
        """Move the root (called when the vehicle's current vertex changes)."""
        self._root_location = vertex

    @property
    def is_empty(self) -> bool:
        """``True`` when the vehicle has no outstanding stops."""
        return not self._schedules or all(not schedule for schedule in self._schedules)

    def schedules(self) -> List[Tuple[Stop, ...]]:
        """Return every valid schedule (each a tuple of stops)."""
        return list(self._schedules)

    def schedule_count(self) -> int:
        """Number of valid schedules (branches of the tree)."""
        return len(self._schedules)

    def stops(self) -> List[Stop]:
        """Return the distinct stops appearing in the schedules."""
        seen: Dict[Tuple[int, str, str], Stop] = {}
        for schedule in self._schedules:
            for stop in schedule:
                seen.setdefault((stop.vertex, stop.request_id, stop.kind.value), stop)
        return list(seen.values())

    def stop_vertices(self) -> List[int]:
        """Return the distinct vertices visited by any schedule."""
        return sorted({stop.vertex for schedule in self._schedules for stop in schedule})

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def set_schedules(self, schedules: Iterable[Sequence[Stop]]) -> None:
        """Replace the schedule set (deduplicating identical sequences).

        Raises:
            InvalidScheduleError: if the schedules do not all contain the same
                multiset of stops (they must be orderings of one another).
        """
        unique: Dict[Tuple[Stop, ...], None] = {}
        for schedule in schedules:
            unique[tuple(schedule)] = None
        candidate = list(unique)
        if candidate:
            reference = _stop_signature(candidate[0])
            for schedule in candidate[1:]:
                if _stop_signature(schedule) != reference:
                    raise InvalidScheduleError(
                        "all schedules of a kinetic tree must visit the same set of stops"
                    )
        self._schedules = candidate

    def to_payload(self) -> Dict[str, object]:
        """JSON-able form of the tree (root vertex + flat schedules).

        The durability snapshot format (:mod:`repro.service.recovery`):
        each stop becomes a ``[vertex, request_id, kind, riders]`` list, so
        the payload survives a JSON round-trip and
        :meth:`from_payload` rebuilds an equal tree.
        """
        return {
            "root": self._root_location,
            "schedules": [
                [
                    [stop.vertex, stop.request_id, stop.kind.value, stop.riders]
                    for stop in schedule
                ]
                for schedule in self._schedules
            ],
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "KineticTree":
        """Rebuild a tree from a :meth:`to_payload` dictionary."""
        schedules = [
            [
                Stop(
                    vertex=int(stop[0]),
                    request_id=str(stop[1]),
                    kind=StopKind(stop[2]),
                    riders=int(stop[3]),
                )
                for stop in schedule
            ]
            for schedule in payload["schedules"]
        ]
        return cls(root_location=int(payload["root"]), schedules=schedules)

    def clear(self) -> None:
        """Drop every schedule (the vehicle becomes empty)."""
        self._schedules = []

    def replace(self, schedules: Iterable[Sequence[Stop]]) -> None:
        """Alias of :meth:`set_schedules` kept for dispatcher readability."""
        self.set_schedules(schedules)

    def advance_through(self, stop: Stop) -> None:
        """Record that the vehicle has arrived at ``stop``.

        Schedules whose first stop is ``stop`` lose that stop; schedules that
        would have visited a different stop first are no longer achievable and
        are pruned (this is how the kinetic tree "moves" with the vehicle).

        Raises:
            InvalidScheduleError: if no schedule starts with ``stop``.
        """
        surviving = [schedule[1:] for schedule in self._schedules if schedule and schedule[0] == stop]
        if not surviving and self._schedules:
            raise InvalidScheduleError(
                f"no schedule of the kinetic tree starts with {stop}; cannot advance"
            )
        self._root_location = stop.vertex
        unique: Dict[Tuple[Stop, ...], None] = {}
        for schedule in surviving:
            unique[tuple(schedule)] = None
        self._schedules = [schedule for schedule in unique if schedule] or []

    def prune(self, keep: Iterable[Tuple[Stop, ...]]) -> None:
        """Keep only the schedules listed in ``keep`` (used by re-validation)."""
        keep_set = {tuple(schedule) for schedule in keep}
        self._schedules = [schedule for schedule in self._schedules if schedule in keep_set]

    # ------------------------------------------------------------------
    # queries used by matching and movement
    # ------------------------------------------------------------------
    def best_schedule(
        self, distance: DistanceFunction, origin_offset: float = 0.0
    ) -> Optional[Tuple[Stop, ...]]:
        """Return the minimum-total-distance schedule (the branch the vehicle drives).

        Returns ``None`` for an empty tree.
        """
        if self.is_empty:
            return None
        return min(
            (schedule for schedule in self._schedules if schedule),
            key=lambda schedule: schedule_distance(
                self._root_location, schedule, distance, origin_offset
            ),
        )

    def next_stop(self, distance: DistanceFunction, origin_offset: float = 0.0) -> Optional[Stop]:
        """Return the first stop of the best schedule (``None`` when empty)."""
        best = self.best_schedule(distance, origin_offset)
        if not best:
            return None
        return best[0]

    def total_distance(self, distance: DistanceFunction, origin_offset: float = 0.0) -> float:
        """Return the travel distance of the best schedule (0 when empty)."""
        best = self.best_schedule(distance, origin_offset)
        if not best:
            return origin_offset
        return schedule_distance(self._root_location, best, distance, origin_offset)

    # ------------------------------------------------------------------
    # materialised tree (Fig. 3)
    # ------------------------------------------------------------------
    def build_tree(
        self,
        distance: DistanceFunction,
        capacity: int,
        onboard_riders: int = 0,
        request_states: Optional[Mapping[str, RequestState]] = None,
    ) -> KineticTreeNode:
        """Materialise the annotated, prefix-sharing tree of Fig. 3.

        Args:
            distance: shortest-path distance callback.
            capacity: the vehicle capacity (used for the occupancy annotation).
            onboard_riders: riders already on board at the root.
            request_states: per-request constraint state; when provided the
                ``detour_slack`` annotation reflects the true remaining
                budgets, otherwise it stays infinite.

        Returns:
            The root :class:`KineticTreeNode`.
        """
        root = KineticTreeNode(stop=None, occupancy=onboard_riders, dist_from_root=0.0)
        states = dict(request_states or {})
        for schedule in self._schedules:
            node = root
            previous_vertex = self._root_location
            travelled = 0.0
            occupancy = onboard_riders
            for stop in schedule:
                travelled += distance(previous_vertex, stop.vertex)
                occupancy += stop.occupancy_delta
                child = _find_child(node, stop)
                if child is None:
                    slack = _detour_slack(states, stop, travelled)
                    child = KineticTreeNode(
                        stop=stop,
                        occupancy=occupancy,
                        dist_from_root=travelled,
                        detour_slack=slack,
                    )
                    node.children.append(child)
                node = child
                previous_vertex = stop.vertex
        return root

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"KineticTree(root={self._root_location}, schedules={len(self._schedules)}, "
            f"stops={len(self.stops())})"
        )


def _stop_signature(schedule: Sequence[Stop]) -> Tuple[Tuple[int, str, str, int], ...]:
    """Return an order-independent signature of a schedule's stops."""
    return tuple(
        sorted((stop.vertex, stop.request_id, stop.kind.value, stop.riders) for stop in schedule)
    )


def _find_child(node: KineticTreeNode, stop: Stop) -> Optional[KineticTreeNode]:
    for child in node.children:
        if child.stop == stop:
            return child
    return None


def _detour_slack(
    states: Mapping[str, RequestState], stop: Stop, travelled: float
) -> float:
    """Remaining detour budget of the request served at ``stop`` (annotation only)."""
    state = states.get(stop.request_id)
    if state is None:
        return float("inf")
    return max(0.0, state.remaining_service_budget() - travelled)
