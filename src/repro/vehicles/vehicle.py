"""Mutable per-vehicle state.

Section 3.2.2 of the paper represents each vehicle by its identifier, its
current location, its set of unfinished ridesharing requests (sorted by
timestamp) and its set of valid trip schedules (the kinetic tree).
:class:`Vehicle` implements that record and adds the bookkeeping the
constraint checks of Definition 2 need while the vehicle moves:

* for every *waiting* (assigned but not yet picked-up) request, the remaining
  distance to its pick-up under the schedule that was promised at assignment
  time (the waiting-time condition compares new schedules against it);
* for every *onboard* request, the distance travelled since pick-up (the
  service condition subtracts it from the detour budget).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import CapacityExceededError, InvalidScheduleError, VehicleError
from repro.model.request import Request
from repro.model.stops import Stop
from repro.vehicles.kinetic_tree import KineticTree
from repro.vehicles.schedule import DistanceFunction, RequestState

__all__ = ["Vehicle"]


class Vehicle:
    """One taxi of the fleet.

    Args:
        vehicle_id: unique identifier.
        location: current vertex (or, while driving along an edge, the next
            vertex the vehicle will reach).
        capacity: maximum number of riders on board at any time.
        offset: remaining distance until ``location`` is reached (0 when the
            vehicle sits exactly at the vertex).
    """

    def __init__(self, vehicle_id: str, location: int, capacity: int = 4, offset: float = 0.0) -> None:
        if capacity < 1:
            raise VehicleError(f"vehicle {vehicle_id}: capacity must be >= 1, got {capacity}")
        if offset < 0:
            raise VehicleError(f"vehicle {vehicle_id}: offset must be non-negative, got {offset}")
        self.vehicle_id = vehicle_id
        self.capacity = capacity
        self._location = location
        self._offset = float(offset)
        self._waiting: Dict[str, RequestState] = {}
        self._onboard: Dict[str, RequestState] = {}
        self._assignment_order: List[str] = []
        self.kinetic_tree = KineticTree(root_location=location)
        #: grid cells the vehicle is currently registered in (managed by the fleet)
        self.registered_cells: set = set()
        #: distance driven in total (statistics)
        self.distance_driven: float = 0.0
        #: distance driven while at least one rider was on board (statistics)
        self.occupied_distance: float = 0.0

    # ------------------------------------------------------------------
    # location
    # ------------------------------------------------------------------
    @property
    def location(self) -> int:
        """The vertex the vehicle is at (or about to reach)."""
        return self._location

    @property
    def offset(self) -> float:
        """Remaining distance until :attr:`location` is reached."""
        return self._offset

    def set_location(self, vertex: int, offset: float = 0.0) -> None:
        """Teleport the vehicle (used at initialisation and by the movement model)."""
        if offset < 0:
            raise VehicleError(f"offset must be non-negative, got {offset}")
        self._location = vertex
        self._offset = float(offset)
        self.kinetic_tree.set_root_location(vertex)

    # ------------------------------------------------------------------
    # request bookkeeping
    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        """Number of riders currently on board."""
        return sum(state.request.riders for state in self._onboard.values())

    @property
    def is_empty(self) -> bool:
        """``True`` when the vehicle has no unfinished request (empty vehicle)."""
        return not self._waiting and not self._onboard

    @property
    def waiting_requests(self) -> Dict[str, RequestState]:
        """Requests assigned but not yet picked up (read-only copy)."""
        return dict(self._waiting)

    @property
    def onboard_requests(self) -> Dict[str, RequestState]:
        """Requests currently riding (read-only copy)."""
        return dict(self._onboard)

    def request_states(self) -> Dict[str, RequestState]:
        """All unfinished requests keyed by id (waiting and onboard)."""
        states = dict(self._waiting)
        states.update(self._onboard)
        return states

    def unfinished_request_ids(self) -> List[str]:
        """Request ids in assignment (timestamp) order, as the paper stores them."""
        return [rid for rid in self._assignment_order if rid in self._waiting or rid in self._onboard]

    def has_request(self, request_id: str) -> bool:
        """``True`` when the request is currently assigned to this vehicle."""
        return request_id in self._waiting or request_id in self._onboard

    # ------------------------------------------------------------------
    # assignment / pick-up / drop-off transitions
    # ------------------------------------------------------------------
    def assign(
        self,
        request: Request,
        planned_pickup_distance: float,
        direct_distance: float,
        schedules: List[Tuple[Stop, ...]],
    ) -> None:
        """Assign ``request`` to the vehicle and install its new schedule set.

        Args:
            request: the accepted request.
            planned_pickup_distance: the pick-up distance promised to the
                rider (from the chosen option).
            direct_distance: ``dist(s, d)`` for the request.
            schedules: every valid schedule containing the new request's
                stops; they become the vehicle's kinetic tree.

        Raises:
            VehicleError: if the request is already assigned.
            CapacityExceededError: if the request alone exceeds capacity.
            InvalidScheduleError: if ``schedules`` is empty.
        """
        if self.has_request(request.request_id):
            raise VehicleError(f"request {request.request_id} is already assigned to {self.vehicle_id}")
        if request.riders > self.capacity:
            raise CapacityExceededError(
                f"request {request.request_id} has {request.riders} riders, "
                f"vehicle {self.vehicle_id} capacity is {self.capacity}"
            )
        if not schedules:
            raise InvalidScheduleError(
                f"assigning {request.request_id} to {self.vehicle_id} requires at least one schedule"
            )
        self._waiting[request.request_id] = RequestState(
            request=request,
            onboard=False,
            direct_distance=direct_distance,
            planned_pickup_remaining=planned_pickup_distance,
            travelled_since_pickup=0.0,
        )
        self._assignment_order.append(request.request_id)
        self.kinetic_tree.set_schedules(schedules)

    def pickup(self, request_id: str) -> RequestState:
        """Move a waiting request on board (called when the vehicle reaches its start).

        Raises:
            VehicleError: if the request is not waiting on this vehicle.
            CapacityExceededError: if boarding would exceed capacity.
        """
        state = self._waiting.pop(request_id, None)
        if state is None:
            raise VehicleError(f"request {request_id} is not waiting on vehicle {self.vehicle_id}")
        if self.occupancy + state.request.riders > self.capacity:
            self._waiting[request_id] = state
            raise CapacityExceededError(
                f"picking up {request_id} would exceed the capacity of {self.vehicle_id}"
            )
        boarded = RequestState(
            request=state.request,
            onboard=True,
            direct_distance=state.direct_distance,
            planned_pickup_remaining=0.0,
            travelled_since_pickup=0.0,
        )
        self._onboard[request_id] = boarded
        return boarded

    def dropoff(self, request_id: str) -> RequestState:
        """Remove an onboard request (called when the vehicle reaches its destination).

        Raises:
            VehicleError: if the request is not on board.
        """
        state = self._onboard.pop(request_id, None)
        if state is None:
            raise VehicleError(f"request {request_id} is not on board vehicle {self.vehicle_id}")
        if request_id in self._assignment_order:
            self._assignment_order.remove(request_id)
        return state

    # ------------------------------------------------------------------
    # movement bookkeeping
    # ------------------------------------------------------------------
    def record_progress(self, travelled: float) -> None:
        """Account for ``travelled`` distance units of driving.

        Waiting requests see their planned pick-up distance shrink (never
        below zero); onboard requests accumulate travelled distance against
        their detour budgets; fleet statistics are updated.

        Raises:
            VehicleError: for negative ``travelled``.
        """
        if travelled < 0:
            raise VehicleError(f"travelled distance must be non-negative, got {travelled}")
        if travelled == 0:
            return
        self.distance_driven += travelled
        if self._onboard:
            self.occupied_distance += travelled
        for request_id, state in list(self._waiting.items()):
            # The remaining planned distance may go negative: that encodes a
            # vehicle that is already later than promised, so any further
            # insertion only gets the *unused* part of the waiting budget
            # (Definition 2, condition 3).
            self._waiting[request_id] = RequestState(
                request=state.request,
                onboard=False,
                direct_distance=state.direct_distance,
                planned_pickup_remaining=state.planned_pickup_remaining - travelled,
                travelled_since_pickup=0.0,
            )
        for request_id, state in list(self._onboard.items()):
            self._onboard[request_id] = RequestState(
                request=state.request,
                onboard=True,
                direct_distance=state.direct_distance,
                planned_pickup_remaining=0.0,
                travelled_since_pickup=state.travelled_since_pickup + travelled,
            )

    # ------------------------------------------------------------------
    # schedule helpers
    # ------------------------------------------------------------------
    def current_schedules(self) -> List[Tuple[Stop, ...]]:
        """Return the valid schedules of the kinetic tree."""
        return self.kinetic_tree.schedules()

    def best_schedule(self, distance: DistanceFunction) -> Optional[Tuple[Stop, ...]]:
        """Return the schedule the vehicle is currently driving (min distance)."""
        return self.kinetic_tree.best_schedule(distance, origin_offset=self._offset)

    def arrive_at_stop(self, stop: Stop) -> None:
        """Advance the kinetic tree through ``stop`` and update the location."""
        self.kinetic_tree.advance_through(stop)
        self._location = stop.vertex
        self._offset = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Vehicle({self.vehicle_id!r}, location={self._location}, capacity={self.capacity}, "
            f"occupancy={self.occupancy}, waiting={len(self._waiting)}, onboard={len(self._onboard)})"
        )
