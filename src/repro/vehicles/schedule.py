"""Trip-schedule feasibility machinery (Definition 2 of the paper).

A *valid* vehicle trip schedule must satisfy four conditions:

1. **Capacity** -- the number of riders on board never exceeds the vehicle's
   capacity;
2. **Point order** -- a request's pick-up appears before its drop-off, and
   both appear after the position where the vehicle received the request;
3. **Waiting time** -- for every not-yet-picked-up request, the distance from
   the vehicle's current location to the pick-up under the *actual* schedule
   may exceed the distance under the *planned* schedule by at most ``w``;
4. **Service constraint** -- the distance actually travelled between a
   request's start and destination may not exceed
   ``(1 + epsilon) * dist(s, d)``.

The functions in this module evaluate those conditions for explicit stop
sequences; :mod:`repro.vehicles.kinetic_tree` builds on them to maintain the
set of all valid schedules per vehicle, and :mod:`repro.core.insertion` uses
them when answering requests.

All checks are expressed in *distance units*: the paper assumes a constant
vehicle speed, so waiting times translate directly into distances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import InvalidScheduleError
from repro.model.request import Request
from repro.model.stops import Stop, StopKind

__all__ = [
    "DistanceFunction",
    "RequestState",
    "FeasibilityResult",
    "ScheduleMetrics",
    "evaluate_schedule",
    "check_schedule",
    "enumerate_insertions",
    "prefix_distances",
    "schedule_distance",
]

#: Signature of the shortest-path distance callback used throughout the
#: vehicle layer: ``distance(u, v) -> float``.
DistanceFunction = Callable[[int, int], float]


@dataclass(frozen=True)
class RequestState:
    """Constraint bookkeeping for one unfinished request of a vehicle.

    Attributes:
        request: the request itself.
        onboard: ``True`` once the riders have been picked up.
        direct_distance: ``dist(s, d)`` on the road network, cached at
            assignment time.
        planned_pickup_remaining: for waiting requests, the distance from the
            vehicle's *current* location to the pick-up under the schedule
            that was promised when the request was assigned.  It shrinks as
            the vehicle advances; the waiting-time condition compares any new
            schedule against it.
        travelled_since_pickup: for onboard requests, the distance travelled
            since the riders boarded; the service condition subtracts it from
            the total detour budget.
    """

    request: Request
    onboard: bool = False
    direct_distance: float = 0.0
    planned_pickup_remaining: float = 0.0
    travelled_since_pickup: float = 0.0

    @property
    def request_id(self) -> str:
        """Identifier of the underlying request."""
        return self.request.request_id

    def remaining_service_budget(self) -> float:
        """Distance still allowed between (remaining) pick-up and drop-off."""
        budget = self.request.detour_budget(self.direct_distance)
        if self.onboard:
            return budget - self.travelled_since_pickup
        return budget

    def waiting_budget(self) -> float:
        """Maximum pick-up distance allowed under the waiting-time condition."""
        return self.planned_pickup_remaining + self.request.max_waiting


@dataclass(frozen=True)
class FeasibilityResult:
    """Outcome of a schedule validity check."""

    feasible: bool
    reason: str = ""
    violated_request_id: Optional[str] = None

    def __bool__(self) -> bool:
        return self.feasible

    @classmethod
    def ok(cls) -> "FeasibilityResult":
        """A successful check."""
        return cls(feasible=True)

    @classmethod
    def violation(cls, reason: str, request_id: Optional[str] = None) -> "FeasibilityResult":
        """A failed check with a human-readable reason."""
        return cls(feasible=False, reason=reason, violated_request_id=request_id)


@dataclass(frozen=True)
class ScheduleMetrics:
    """Distance metrics of a stop sequence measured from a given origin."""

    total_distance: float
    prefix: Tuple[float, ...]
    pickup_distance: Dict[str, float]
    dropoff_distance: Dict[str, float]

    def distance_to_stop(self, index: int) -> float:
        """Distance from the origin to the ``index``-th stop (0-based)."""
        return self.prefix[index]


def prefix_distances(
    origin: int,
    stops: Sequence[Stop],
    distance: DistanceFunction,
    origin_offset: float = 0.0,
) -> List[float]:
    """Return cumulative travel distances from ``origin`` to every stop.

    ``origin_offset`` accounts for a vehicle that is part-way along an edge
    towards ``origin`` (its next vertex); the offset is added to every prefix.
    """
    result: List[float] = []
    total = origin_offset
    previous = origin
    for stop in stops:
        total += distance(previous, stop.vertex)
        result.append(total)
        previous = stop.vertex
    return result


def schedule_distance(
    origin: int,
    stops: Sequence[Stop],
    distance: DistanceFunction,
    origin_offset: float = 0.0,
) -> float:
    """Return the total travel distance of a stop sequence from ``origin``."""
    if not stops:
        return origin_offset
    return prefix_distances(origin, stops, distance, origin_offset)[-1]


def evaluate_schedule(
    origin: int,
    stops: Sequence[Stop],
    distance: DistanceFunction,
    origin_offset: float = 0.0,
) -> ScheduleMetrics:
    """Compute the distance metrics of a stop sequence.

    Returns:
        A :class:`ScheduleMetrics` with the total distance, per-stop prefix
        distances and, for every request appearing in the sequence, the
        distance to its pick-up and drop-off stops.
    """
    prefix = prefix_distances(origin, stops, distance, origin_offset)
    pickup_distance: Dict[str, float] = {}
    dropoff_distance: Dict[str, float] = {}
    for index, stop in enumerate(stops):
        if stop.is_pickup:
            pickup_distance[stop.request_id] = prefix[index]
        else:
            dropoff_distance[stop.request_id] = prefix[index]
    total = prefix[-1] if prefix else origin_offset
    return ScheduleMetrics(
        total_distance=total,
        prefix=tuple(prefix),
        pickup_distance=pickup_distance,
        dropoff_distance=dropoff_distance,
    )


def check_schedule(
    origin: int,
    stops: Sequence[Stop],
    capacity: int,
    onboard_riders: int,
    request_states: Mapping[str, RequestState],
    distance: DistanceFunction,
    origin_offset: float = 0.0,
    metrics: Optional[ScheduleMetrics] = None,
) -> FeasibilityResult:
    """Check the four validity conditions of Definition 2 for a stop sequence.

    Args:
        origin: the vehicle's current location (its next vertex).
        stops: the candidate stop sequence.
        capacity: vehicle capacity.
        onboard_riders: riders already in the vehicle before the first stop.
        request_states: state of every unfinished request appearing in the
            sequence, keyed by request id.
        distance: shortest-path distance callback.
        origin_offset: remaining distance to reach ``origin`` (for vehicles
            travelling along an edge).
        metrics: optionally pre-computed metrics for ``stops`` (to avoid
            recomputation when the caller already evaluated the sequence).

    Returns:
        :class:`FeasibilityResult` describing the first violated condition,
        or a success result when the schedule is valid.
    """
    # --- structural / point-order checks (no distances needed) -----------
    seen_pickup: Dict[str, int] = {}
    seen_dropoff: Dict[str, int] = {}
    for index, stop in enumerate(stops):
        state = request_states.get(stop.request_id)
        if state is None:
            return FeasibilityResult.violation(
                f"stop references unknown request {stop.request_id}", stop.request_id
            )
        if stop.is_pickup:
            if state.onboard:
                return FeasibilityResult.violation(
                    f"request {stop.request_id} is already on board but has a pick-up stop",
                    stop.request_id,
                )
            if stop.request_id in seen_pickup:
                return FeasibilityResult.violation(
                    f"request {stop.request_id} has two pick-up stops", stop.request_id
                )
            seen_pickup[stop.request_id] = index
        else:
            if stop.request_id in seen_dropoff:
                return FeasibilityResult.violation(
                    f"request {stop.request_id} has two drop-off stops", stop.request_id
                )
            seen_dropoff[stop.request_id] = index

    for request_id, state in request_states.items():
        if request_id not in seen_dropoff:
            return FeasibilityResult.violation(
                f"request {request_id} has no drop-off stop", request_id
            )
        if not state.onboard:
            if request_id not in seen_pickup:
                return FeasibilityResult.violation(
                    f"waiting request {request_id} has no pick-up stop", request_id
                )
            if seen_pickup[request_id] > seen_dropoff[request_id]:
                return FeasibilityResult.violation(
                    f"request {request_id} is dropped off before being picked up", request_id
                )
        elif request_id in seen_pickup:
            return FeasibilityResult.violation(
                f"onboard request {request_id} must not be picked up again", request_id
            )

    # --- capacity ---------------------------------------------------------
    occupancy = onboard_riders
    for stop in stops:
        occupancy += stop.occupancy_delta
        if occupancy > capacity:
            return FeasibilityResult.violation(
                f"capacity exceeded after {stop}: {occupancy} > {capacity}", stop.request_id
            )
        if occupancy < 0:
            return FeasibilityResult.violation(
                f"negative occupancy after {stop}", stop.request_id
            )

    # --- distance-based checks (waiting time, service constraint) ---------
    if metrics is None:
        metrics = evaluate_schedule(origin, stops, distance, origin_offset)

    for request_id, state in request_states.items():
        if not state.onboard:
            pickup_at = metrics.pickup_distance[request_id]
            if pickup_at > state.waiting_budget() + 1e-9:
                return FeasibilityResult.violation(
                    f"waiting-time constraint violated for {request_id}: "
                    f"{pickup_at:.6g} > {state.waiting_budget():.6g}",
                    request_id,
                )
            travelled = metrics.dropoff_distance[request_id] - pickup_at
        else:
            travelled = metrics.dropoff_distance[request_id]
        if travelled > state.remaining_service_budget() + 1e-9:
            return FeasibilityResult.violation(
                f"service constraint violated for {request_id}: "
                f"{travelled:.6g} > {state.remaining_service_budget():.6g}",
                request_id,
            )
    return FeasibilityResult.ok()


def enumerate_insertions(
    stops: Sequence[Stop],
    pickup: Stop,
    dropoff: Stop,
) -> Iterator[Tuple[Stop, ...]]:
    """Yield every stop sequence obtained by inserting a pick-up/drop-off pair.

    The pick-up is inserted at every position ``i`` and the drop-off at every
    position ``j >= i`` (after the pick-up), preserving the relative order of
    the existing stops -- which is exactly how a request is inserted into one
    branch of a kinetic tree.
    """
    base = list(stops)
    length = len(base)
    for i in range(length + 1):
        with_pickup = base[:i] + [pickup] + base[i:]
        for j in range(i + 1, length + 2):
            yield tuple(with_pickup[:j] + [dropoff] + with_pickup[j:])
