"""Constant-speed vehicle motion.

Section 4 of the paper describes the vehicle behaviour of the demonstration:

* vehicles with riders (or assigned pick-ups) follow their planned route;
* idle vehicles follow the current road segment and pick a random segment at
  every intersection;
* a constant speed is assumed (48 km/h in the demo), so travelled *time*
  converts directly to travelled *distance*.

The simulation engine advances every vehicle once per tick.  This module
provides the primitives it uses: route planning along shortest paths, random
idle wandering and the arithmetic of moving a vehicle a given distance along
a vertex route.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.roadnet.graph import RoadNetwork
from repro.roadnet.shortest_path import shortest_path

__all__ = ["MotionState", "plan_route", "random_idle_route", "step_along_route"]


@dataclass(frozen=True)
class MotionState:
    """Where a vehicle is along its current route.

    Attributes:
        location: the vertex the vehicle last reached (or starts from).
        route: the vertices still ahead of the vehicle, in driving order
            (``route[0]`` is the next vertex); empty when the vehicle has
            arrived.
        offset: distance already driven along the edge towards ``route[0]``.
    """

    location: int
    route: Tuple[int, ...] = ()
    offset: float = 0.0

    @property
    def has_route(self) -> bool:
        """``True`` while there are vertices left to visit."""
        return bool(self.route)

    @property
    def next_vertex(self) -> Optional[int]:
        """The next vertex on the route, or ``None`` when arrived."""
        return self.route[0] if self.route else None

    def remaining_distance(self, network: RoadNetwork) -> float:
        """Distance left to drive until the end of the route."""
        if not self.route:
            return 0.0
        total = network.edge_weight(self.location, self.route[0]) - self.offset
        previous = self.route[0]
        for vertex in self.route[1:]:
            total += network.edge_weight(previous, vertex)
            previous = vertex
        return total


def plan_route(network: RoadNetwork, source: int, target: int) -> MotionState:
    """Return a motion state that drives the shortest path from ``source`` to ``target``."""
    if source == target:
        return MotionState(location=source)
    result = shortest_path(network, source, target)
    return MotionState(location=source, route=tuple(result.path[1:]), offset=0.0)


def random_idle_route(
    network: RoadNetwork, location: int, rng: random.Random, hops: int = 1
) -> MotionState:
    """Return a short random wander for an idle vehicle.

    The vehicle picks a random neighbour at each intersection, as described in
    Section 4 of the paper.  ``hops`` neighbours are chained so the engine
    does not need to re-plan every tick.
    """
    if hops < 1:
        raise SimulationError(f"hops must be >= 1, got {hops}")
    route: List[int] = []
    current = location
    for _ in range(hops):
        neighbours = list(network.neighbours_view(current))
        if not neighbours:
            break
        nxt = rng.choice(neighbours)
        route.append(nxt)
        current = nxt
    return MotionState(location=location, route=tuple(route), offset=0.0)


def step_along_route(
    network: RoadNetwork, state: MotionState, travel: float
) -> Tuple[MotionState, float, List[int]]:
    """Advance a vehicle ``travel`` distance units along its route.

    Args:
        network: the road network the route lives on.
        state: the current motion state.
        travel: distance to drive this tick (``speed * dt``).

    Returns:
        A tuple ``(new_state, travelled, reached)`` where ``travelled`` is the
        distance actually driven (it is smaller than ``travel`` when the route
        ends early) and ``reached`` lists the vertices passed this tick in
        driving order.

    Raises:
        SimulationError: for negative ``travel`` or a route that references a
            missing edge.
    """
    if travel < 0:
        raise SimulationError(f"travel must be non-negative, got {travel}")
    location = state.location
    offset = state.offset
    route = list(state.route)
    remaining = travel
    travelled = 0.0
    reached: List[int] = []

    while route and remaining > 0:
        next_vertex = route[0]
        edge_length = network.edge_weight(location, next_vertex)
        to_next = edge_length - offset
        if to_next < 0:
            raise SimulationError(
                f"inconsistent motion state: offset {offset} exceeds edge length {edge_length}"
            )
        if remaining >= to_next:
            # the vehicle reaches (at least) the next vertex this tick
            travelled += to_next
            remaining -= to_next
            location = next_vertex
            offset = 0.0
            reached.append(next_vertex)
            route.pop(0)
        else:
            offset += remaining
            travelled += remaining
            remaining = 0.0
    return MotionState(location=location, route=tuple(route), offset=offset), travelled, reached
